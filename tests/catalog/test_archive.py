"""Tests for archive construction (catalog + partitioning + index)."""

import pytest

from repro.catalog.archive import ArchiveConfig, build_archive, build_synthetic_archive
from repro.catalog.generator import SkyGenerator, SkyGeneratorConfig


@pytest.fixture(scope="module")
def archive():
    generator = SkyGenerator(SkyGeneratorConfig(object_count=600, seed=13))
    catalog = generator.generate("sdss")
    config = ArchiveConfig(objects_per_bucket=100, bucket_megabytes=4.0, target_bucket_read_s=0.2)
    return build_archive("sdss", catalog, config)


class TestBuildArchive:
    def test_partitioning_matches_catalog(self, archive):
        assert archive.layout.total_objects() == len(archive.catalog)
        assert archive.bucket_count == 6
        assert len(archive.index) == len(archive.catalog)

    def test_bucket_read_cost_is_calibrated(self, archive):
        cost = archive.store.read_bucket(0).cost_ms
        assert cost == pytest.approx(200.0, rel=1e-6)

    def test_buckets_contain_their_objects(self, archive):
        image = archive.store.bucket_image(0)
        spec = archive.layout[0]
        assert len(image.objects) == spec.object_count
        assert all(spec.htm_range.low <= hid <= spec.htm_range.high for hid in image.htm_ids)

    def test_index_probe_agrees_with_catalog_scan(self, archive):
        spec = archive.layout[1]
        probe = archive.index.probe_range(spec.htm_range)
        assert probe.row_count == archive.catalog.count_range(spec.htm_range)

    def test_describe_summarises_shape(self, archive):
        summary = archive.describe()
        assert summary["catalog_rows"] == len(archive.catalog)
        assert summary["bucket_count"] == archive.bucket_count


class TestSyntheticArchive:
    def test_synthetic_archive_builds_end_to_end(self):
        archive = build_synthetic_archive(
            "twomass",
            generator_config=SkyGeneratorConfig(object_count=200, seed=5),
            archive_config=ArchiveConfig(
                objects_per_bucket=50, bucket_megabytes=2.0, target_bucket_read_s=0.1
            ),
        )
        assert archive.name == "twomass"
        assert archive.bucket_count == pytest.approx(len(archive.catalog) / 50, abs=1)

    def test_uncalibrated_disk_still_reads(self):
        archive = build_synthetic_archive(
            "sdss",
            generator_config=SkyGeneratorConfig(object_count=100, seed=6),
            archive_config=ArchiveConfig(
                objects_per_bucket=50, bucket_megabytes=2.0, calibrate_disk=False
            ),
        )
        assert archive.store.read_bucket(0).cost_ms > 0
