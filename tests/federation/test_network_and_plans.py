"""Focused coverage of the federation's network cost model and plan builder.

The seed suite exercises these modules only incidentally through the
end-to-end federation test; this file pins their contracts directly —
the latency+bandwidth arithmetic of :class:`NetworkModel` and every
validation and ordering rule of the left-deep plan builder.
"""

import pytest

from repro.federation.network import DEFAULT_OBJECT_BYTES, NetworkModel, TransferResult
from repro.federation.plans import CrossMatchPlan, PlanStep, build_left_deep_plan
from repro.htm.geometry import SkyPoint

CENTER = SkyPoint(ra=180.0, dec=0.0)


class TestNetworkModelArithmetic:
    def test_cost_is_latency_plus_transfer_time(self):
        model = NetworkModel(latency_ms=100.0, bandwidth_mbps=8.0, object_bytes=1024)
        # 1024 objects * 1 KiB = 1 MiB = 8 Mib -> 1 s at 8 Mb/s.
        result = model.transfer(1024)
        assert result.megabytes == pytest.approx(1.0)
        assert result.cost_ms == pytest.approx(100.0 + 1000.0)

    def test_transfer_cost_scales_linearly_with_objects(self):
        model = NetworkModel(latency_ms=0.0)
        single = model.transfer(1_000).cost_ms
        double = model.transfer(2_000).cost_ms
        assert double == pytest.approx(2.0 * single)

    def test_latency_dominates_small_transfers(self):
        model = NetworkModel(latency_ms=80.0, bandwidth_mbps=10_000.0)
        result = model.transfer(1)
        assert result.cost_ms == pytest.approx(80.0, rel=1e-3)

    def test_default_object_size_is_applied(self):
        model = NetworkModel()
        result = model.transfer(1024 * 1024)
        assert result.megabytes == pytest.approx(DEFAULT_OBJECT_BYTES)

    def test_result_carries_object_count(self):
        result = NetworkModel().transfer(42)
        assert isinstance(result, TransferResult)
        assert result.object_count == 42

    def test_zero_objects_costs_only_latency(self):
        model = NetworkModel(latency_ms=25.0)
        result = model.transfer(0)
        assert result.megabytes == 0.0
        assert result.cost_ms == pytest.approx(25.0)

    def test_negative_object_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            NetworkModel().transfer(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_ms": -1.0},
            {"bandwidth_mbps": 0.0},
            {"bandwidth_mbps": -5.0},
            {"object_bytes": 0},
        ],
    )
    def test_model_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetworkModel(**kwargs)

    def test_model_is_immutable(self):
        model = NetworkModel()
        with pytest.raises(AttributeError):
            model.latency_ms = 5.0


class TestLeftDeepPlanBuilder:
    def test_selectivity_orders_most_selective_first(self):
        plan = build_left_deep_plan(
            query_id=1,
            archives=["sdss", "first", "twomass"],
            center=CENTER,
            radius_deg=1.0,
            selectivity={"sdss": 0.9, "first": 0.05, "twomass": 0.4},
        )
        assert plan.archives == ("first", "twomass", "sdss")
        assert plan.seed_archive == "first"
        assert plan.steps[0].is_seed
        assert not any(step.is_seed for step in plan.steps[1:])

    def test_unknown_selectivity_defaults_to_least_selective(self):
        plan = build_left_deep_plan(
            query_id=2,
            archives=["a", "b", "c"],
            center=CENTER,
            radius_deg=1.0,
            selectivity={"c": 0.1},
        )
        assert plan.archives[0] == "c"
        # Unranked archives keep their given relative order (stable sort).
        assert plan.archives[1:] == ("a", "b")

    def test_without_selectivity_user_order_is_kept(self):
        plan = build_left_deep_plan(
            query_id=3, archives=["b", "a"], center=CENTER, radius_deg=0.5
        )
        assert plan.archives == ("b", "a")

    def test_positions_are_sequential(self):
        plan = build_left_deep_plan(
            query_id=4, archives=["a", "b", "c"], center=CENTER, radius_deg=0.5
        )
        assert [step.position for step in plan.steps] == [0, 1, 2]
        assert len(plan) == 3

    def test_match_radius_and_magnitude_limit_travel_with_the_plan(self):
        plan = build_left_deep_plan(
            query_id=5,
            archives=["a"],
            center=CENTER,
            radius_deg=0.5,
            match_radius_arcsec=7.5,
            magnitude_limit=21.0,
        )
        assert plan.match_radius_arcsec == 7.5
        assert plan.magnitude_limit == 21.0

    def test_empty_archive_list_rejected(self):
        with pytest.raises(ValueError, match="at least one archive"):
            build_left_deep_plan(query_id=6, archives=[], center=CENTER, radius_deg=1.0)


class TestPlanValidation:
    def _steps(self):
        return [
            PlanStep(position=0, archive="a", is_seed=True),
            PlanStep(position=1, archive="b"),
        ]

    def test_non_positive_radius_rejected(self):
        with pytest.raises(ValueError, match="radius"):
            CrossMatchPlan(query_id=1, center=CENTER, radius_deg=0.0, steps=self._steps())

    def test_plan_needs_steps(self):
        with pytest.raises(ValueError, match="at least one step"):
            CrossMatchPlan(query_id=1, center=CENTER, radius_deg=1.0, steps=[])

    def test_first_step_must_be_the_seed(self):
        steps = [PlanStep(position=0, archive="a"), PlanStep(position=1, archive="b")]
        with pytest.raises(ValueError, match="seed"):
            CrossMatchPlan(query_id=1, center=CENTER, radius_deg=1.0, steps=steps)

    def test_archives_property_follows_execution_order(self):
        plan = CrossMatchPlan(
            query_id=1, center=CENTER, radius_deg=1.0, steps=self._steps()
        )
        assert plan.archives == ("a", "b")
        assert plan.seed_archive == "a"
