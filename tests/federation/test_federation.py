"""Tests for the federation substrate (network, plans, nodes, SkyQuery)."""

import pytest

from repro.catalog.archive import ArchiveConfig, build_archive
from repro.catalog.generator import SkyGenerator, SkyGeneratorConfig
from repro.federation.crossmatch import (
    crossmatch_catalogs,
    error_circle_range,
    select_region_objects,
    to_crossmatch_objects,
)
from repro.federation.network import NetworkModel
from repro.federation.node import FederationNode
from repro.federation.plans import build_left_deep_plan
from repro.federation.skyquery import FederatedQuery, SkyQueryFederation
from repro.htm.geometry import SkyPoint


@pytest.fixture(scope="module")
def surveys():
    generator = SkyGenerator(SkyGeneratorConfig(object_count=400, cluster_count=3, seed=31))
    sdss = generator.generate("sdss")
    twomass = generator.derive_companion(sdss, "twomass", completeness=0.85, extra_fraction=0.05)
    return generator, sdss, twomass


@pytest.fixture(scope="module")
def archives(surveys):
    _generator, sdss, twomass = surveys
    config = ArchiveConfig(objects_per_bucket=100, bucket_megabytes=4.0, target_bucket_read_s=0.2)
    return build_archive("sdss", sdss, config), build_archive("twomass", twomass, config)


class TestNetworkModel:
    def test_transfer_costs_latency_plus_bandwidth(self):
        network = NetworkModel(latency_ms=50.0, bandwidth_mbps=80.0, object_bytes=128)
        result = network.transfer(10_000)
        assert result.object_count == 10_000
        assert result.megabytes == pytest.approx(10_000 * 128 / 1024 / 1024)
        assert result.cost_ms > 50.0

    def test_empty_transfer_still_pays_latency(self):
        assert NetworkModel(latency_ms=30.0).transfer(0).cost_ms == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_ms=-1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            NetworkModel().transfer(-1)


class TestCrossmatchHelpers:
    def test_error_circle_range_contains_object(self, surveys):
        _generator, sdss, _twomass = surveys
        obj = sdss.rows[0]
        htm_range = error_circle_range(obj, radius_arcsec=3.0)
        assert obj.htm_id in htm_range

    def test_to_crossmatch_objects_carries_positions(self, surveys):
        _generator, sdss, _twomass = surveys
        shipped = to_crossmatch_objects(list(sdss)[:10], match_radius_arcsec=2.5)
        assert len(shipped) == 10
        assert all(o.ra is not None and o.match_radius_arcsec == 2.5 for o in shipped)

    def test_select_region_objects_filters_by_cone_and_magnitude(self, surveys):
        _generator, sdss, _twomass = surveys
        center = SkyPoint(sdss.rows[0].ra, sdss.rows[0].dec)
        selected = select_region_objects(sdss, center, radius_deg=2.0)
        assert selected
        bright = select_region_objects(sdss, center, radius_deg=2.0, magnitude_limit=16.0)
        assert len(bright) <= len(selected)
        assert all(obj.magnitude <= 16.0 for obj in bright)

    def test_reference_crossmatch_finds_jittered_counterparts(self, surveys):
        _generator, sdss, twomass = surveys
        incoming = to_crossmatch_objects(list(twomass)[:50], match_radius_arcsec=3.0)
        pairs = crossmatch_catalogs(incoming, sdss)
        assert pairs
        for shipped, matched in pairs:
            separation = 3600.0 * abs(shipped.dec - matched.dec)
            assert separation < 10.0  # sanity: matches are close in declination


class TestPlans:
    def test_left_deep_plan_orders_by_selectivity(self):
        plan = build_left_deep_plan(
            1,
            ["usnob", "twomass", "sdss"],
            SkyPoint(10.0, 10.0),
            1.0,
            selectivity={"usnob": 3.0, "twomass": 1.0, "sdss": 2.0},
        )
        assert plan.archives == ("twomass", "sdss", "usnob")
        assert plan.seed_archive == "twomass"
        assert len(plan) == 3

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            build_left_deep_plan(1, [], SkyPoint(0, 0), 1.0)
        with pytest.raises(ValueError):
            build_left_deep_plan(1, ["sdss"], SkyPoint(0, 0), 0.0)


class TestFederationNode:
    def test_node_crossmatch_agrees_with_reference(self, archives, surveys):
        sdss_archive, _twomass_archive = archives
        _generator, sdss, twomass = surveys
        node = FederationNode(sdss_archive)
        incoming = to_crossmatch_objects(list(twomass)[:60], match_radius_arcsec=3.0)
        result = node.execute(query_id=1, objects=incoming)
        reference = crossmatch_catalogs(incoming, sdss)
        assert len(result.matches) == len(reference)
        assert result.busy_time_ms > 0
        assert result.bucket_services > 0
        assert node.statistics()["total_matches"] >= len(result.matches)

    def test_empty_input_is_free(self, archives):
        sdss_archive, _ = archives
        node = FederationNode(sdss_archive)
        result = node.execute(query_id=2, objects=[])
        assert result.matches == []
        assert result.busy_time_ms == 0.0

    def test_predicate_filters_matches(self, archives, surveys):
        sdss_archive, _ = archives
        _generator, _sdss, twomass = surveys
        node = FederationNode(sdss_archive)
        incoming = to_crossmatch_objects(list(twomass)[:60], match_radius_arcsec=3.0)
        all_matches = node.execute(query_id=3, objects=incoming).matches
        filtered = node.execute(
            query_id=4, objects=incoming, predicate=lambda row: row.magnitude < 16.0
        ).matches
        assert len(filtered) <= len(all_matches)
        assert all(pair.catalog_object.magnitude < 16.0 for pair in filtered)


class TestSkyQueryFederation:
    def test_end_to_end_federated_crossmatch(self, archives, surveys):
        sdss_archive, twomass_archive = archives
        _generator, sdss, _twomass = surveys
        federation = SkyQueryFederation(NetworkModel(latency_ms=10.0))
        federation.register_archive(sdss_archive)
        federation.register_archive(twomass_archive)
        assert set(federation.archives) == {"sdss", "twomass"}

        center = SkyPoint(sdss.rows[0].ra, sdss.rows[0].dec)
        query = FederatedQuery(
            query_id=1, archives=("twomass", "sdss"), center=center, radius_deg=3.0
        )
        result = federation.execute(query)
        assert result.plan.seed_archive in ("twomass", "sdss")
        assert len(result.site_results) >= 1
        assert result.transfers
        assert result.total_time_ms > 0
        assert result.final_matches >= 0
        assert set(federation.statistics()) == {"sdss", "twomass"}

    def test_duplicate_registration_rejected(self, archives):
        sdss_archive, _ = archives
        federation = SkyQueryFederation()
        federation.register_archive(sdss_archive)
        with pytest.raises(ValueError):
            federation.register_archive(sdss_archive)

    def test_unknown_archive_in_query_rejected(self, archives):
        sdss_archive, _ = archives
        federation = SkyQueryFederation()
        federation.register_archive(sdss_archive)
        query = FederatedQuery(
            query_id=1, archives=("sdss", "rosat"), center=SkyPoint(0, 0), radius_deg=1.0
        )
        with pytest.raises(KeyError):
            federation.plan(query)
        with pytest.raises(KeyError):
            federation.node("rosat")
