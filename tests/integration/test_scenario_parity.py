"""Scenario-parity suite: recorded traces replay bit-identically everywhere.

Each shard is a pure function of its admitted arrival schedule, so a
trace recorded from one run must reproduce the same result digest on
every backend at the same execution shape.  This suite pins that
contract three ways: fresh record/replay round trips, cross-backend
replays of the committed ``.lrtr`` fixtures, and replays through a
different worker count where only completion — not the digest — is
guaranteed.
"""

from pathlib import Path

import pytest

from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.generator import TraceConfig, TraceGenerator
from repro.workload.replay import replay_recorded
from repro.workload.trace_io import read_trace

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures" / "scenarios"
COMMITTED = sorted(FIXTURES.glob("*.lrtr"))


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    """A trace freshly recorded from a serial ``Simulator.execute`` run."""
    path = str(tmp_path_factory.mktemp("traces") / "fresh.lrtr")
    trace = TraceGenerator(TraceConfig(query_count=60, bucket_count=128, seed=77)).generate()
    simulator = Simulator(SimulationConfig(bucket_count=128))
    result = simulator.execute(
        trace.with_saturation(3.0).queries, RunSpec(alpha=0.25, record_trace=path)
    )
    return path, result


class TestRecordReplayRoundTrip:
    def test_trace_file_carries_the_run(self, recorded_trace):
        path, result = recorded_trace
        trace = read_trace(path)
        assert len(trace) == 60
        assert trace.expected_digest == result.result_digest

    def test_serial_replay_is_bit_identical(self, recorded_trace):
        path, result = recorded_trace
        outcome = replay_recorded(path)
        assert outcome.digest_checked
        assert outcome.digest_matches
        assert outcome.result.completed_queries == result.completed_queries

    def test_virtual_replay_is_bit_identical(self, recorded_trace):
        path, _ = recorded_trace
        outcome = replay_recorded(path, backend="virtual")
        assert outcome.digest_checked
        assert outcome.digest_matches

    def test_process_replay_is_bit_identical(self, recorded_trace):
        path, _ = recorded_trace
        outcome = replay_recorded(path, backend="process")
        assert outcome.digest_checked
        assert outcome.digest_matches

    def test_other_worker_count_completes_but_skips_digest(self, recorded_trace):
        path, result = recorded_trace
        outcome = replay_recorded(path, workers=2, backend="virtual")
        assert not outcome.digest_checked
        assert outcome.result.completed_queries == result.completed_queries


class TestCommittedFixtures:
    def test_fixtures_are_committed(self):
        assert len(COMMITTED) >= 2

    @pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.stem)
    def test_fixture_replays_bit_identically(self, path):
        outcome = replay_recorded(str(path))
        assert outcome.trace.meta["scenario"] == path.stem
        assert outcome.digest_checked
        assert outcome.digest_matches

    @pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.stem)
    def test_fixture_replays_bit_identically_on_virtual(self, path):
        outcome = replay_recorded(str(path), backend="virtual")
        assert outcome.digest_checked
        assert outcome.digest_matches
