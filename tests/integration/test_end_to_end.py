"""Integration tests spanning the whole stack.

These tests exercise the public API the way the examples and the benchmark
harness do: generate a sky, build archives, derive a workload, schedule it
with LifeRaft and the baselines, and check the paper's qualitative claims
end to end (plus conservation invariants the unit tests cannot see).
"""

import pytest

from repro.catalog.archive import ArchiveConfig, build_archive
from repro.catalog.generator import SkyGenerator, SkyGeneratorConfig
from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.metrics import CostModel
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.federation.crossmatch import to_crossmatch_objects
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.generator import TraceConfig, TraceGenerator
from repro.workload.query import CrossMatchQuery
from repro.workload.replay import in_arrival_order
from repro.workload.stats import TraceStatistics


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(TraceConfig(query_count=150, bucket_count=256, seed=23)).generate()


@pytest.fixture(scope="module")
def simulator():
    return Simulator(SimulationConfig(bucket_count=256))


class TestSchedulingClaims:
    def test_data_driven_scheduling_beats_noshare_on_throughput(self, trace, simulator):
        queries = trace.with_saturation(1.0).queries
        greedy = simulator.execute(queries, RunSpec(alpha=0.0))
        noshare = simulator.execute(queries, RunSpec(policy="noshare"))
        assert greedy.throughput_qps > 1.5 * noshare.throughput_qps
        assert greedy.avg_response_time_s < noshare.avg_response_time_s

    def test_round_robin_tracks_pure_aging(self, trace, simulator):
        queries = trace.with_saturation(1.0).queries
        aged = simulator.execute(queries, RunSpec(alpha=1.0))
        round_robin = simulator.execute(queries, RunSpec(policy="round_robin"))
        assert round_robin.throughput_qps == pytest.approx(aged.throughput_qps, rel=0.2)

    def test_contention_scheduling_improves_cache_hit_rate(self, trace, simulator):
        queries = trace.with_saturation(1.0).queries
        greedy = simulator.execute(queries, RunSpec(alpha=0.0))
        aged = simulator.execute(queries, RunSpec(alpha=1.0))
        assert greedy.cache_hit_rate > aged.cache_hit_rate

    def test_every_policy_conserves_queries(self, trace, simulator):
        queries = trace.with_saturation(0.5).queries
        for policy in ("liferaft", "noshare", "round_robin", "least_sharable_first"):
            result = simulator.execute(queries, RunSpec(policy=policy, alpha=0.25))
            assert result.completed_queries == len(queries)
            assert result.response_stats.count == len(queries)
            assert result.response_stats.minimum_s >= 0.0

    def test_workload_statistics_match_engine_accounting(self, trace, simulator):
        stats = TraceStatistics(trace.queries)
        result = simulator.execute(trace.with_saturation(2.0).queries, RunSpec(alpha=0.0))
        # Every cross-match object submitted must have been processed by some
        # bucket service exactly once (shared services process whole queues).
        processed = result.strategy_counts["sequential_scan"] + result.strategy_counts[
            "indexed_join"
        ]
        assert processed == result.bucket_services
        assert result.bucket_services <= stats.total_objects


class TestReplay:
    def test_execute_drains_everything(self, trace):
        simulator = Simulator(SimulationConfig(bucket_count=256))
        result = simulator.execute(
            trace.with_saturation(5.0).queries[:40], RunSpec(alpha=0.25)
        )
        assert result.completed_queries == 40
        assert result.result_digest  # every run stamps a replayable digest

    def test_bare_engine_drains_an_arrival_schedule(self, trace):
        """Driving the online engine directly agrees with what the
        simulator wraps: submit in arrival order, drain, and every query
        completes (the pre-RunSpec replay loop, now inlined)."""
        config = SimulationConfig(bucket_count=256)
        simulator = Simulator(config)
        engine = simulator._build_engine(LifeRaftScheduler(SchedulerConfig(alpha=0.25)))
        for query in in_arrival_order(trace.with_saturation(5.0).queries[:40]):
            engine.submit(query, now_ms=query.arrival_time_s * 1000.0)
        engine.run_until_idle()
        report = engine.report()
        assert report.completed_queries == 40
        assert not engine.has_pending_work()


class TestFullFidelityPipeline:
    def test_cross_survey_workload_through_real_archive(self):
        generator = SkyGenerator(SkyGeneratorConfig(object_count=500, cluster_count=4, seed=41))
        sdss = generator.generate("sdss")
        twomass = generator.derive_companion(sdss, "twomass", completeness=0.9)
        archive = build_archive(
            "sdss",
            sdss,
            ArchiveConfig(objects_per_bucket=100, bucket_megabytes=4.0, target_bucket_read_s=0.2),
        )
        cost = CostModel.from_disk(archive.disk, bucket_megabytes=4.0, bucket_objects=100)
        engine = LifeRaftEngine(
            archive.layout,
            archive.store,
            scheduler=LifeRaftScheduler(SchedulerConfig(alpha=0.25, cost=cost)),
            index=archive.index,
            config=EngineConfig(cost=cost, cache_buckets=4),
        )
        # Three concurrent queries shipping different slices of 2MASS.
        rows = list(twomass)
        for query_id, chunk in enumerate((rows[0:80], rows[40:120], rows[100:180])):
            objects = to_crossmatch_objects(chunk, match_radius_arcsec=3.0)
            engine.submit(CrossMatchQuery(query_id=query_id, objects=tuple(objects)), now_ms=0.0)
        engine.run_until_idle()
        report = engine.report()
        assert report.completed_queries == 3
        assert report.total_matches > 0
        # Overlapping slices hit the same buckets, so batching shares reads.
        assert report.bucket_services < sum(
            len(engine.preprocessor.assign(q)) for q in (
                CrossMatchQuery(query_id=10, objects=tuple(to_crossmatch_objects(rows[0:80]))),
                CrossMatchQuery(query_id=11, objects=tuple(to_crossmatch_objects(rows[40:120]))),
                CrossMatchQuery(query_id=12, objects=tuple(to_crossmatch_objects(rows[100:180]))),
            )
        )
