"""Tests for the experiment modules (figures, claims and the registry)."""

import pytest

from repro.experiments import EXPERIMENTS, run_all
from repro.experiments import (
    ablations,
    cache_hits,
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    index_only,
)
from repro.experiments.common import (
    SCALES,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
    render_table,
    scale_preset,
)

#: One shared tiny trace/simulator pair so the experiment tests stay fast.
TINY = dict(query_count=120, bucket_count=256)


@pytest.fixture(scope="module")
def tiny_trace():
    return build_trace("small", **TINY)


@pytest.fixture(scope="module")
def tiny_simulator():
    return build_simulator("small", bucket_count=TINY["bucket_count"])


class TestCommon:
    def test_scale_presets(self):
        assert set(SCALES) == {"small", "default", "full"}
        assert scale_preset("full").query_count == 2000
        with pytest.raises(KeyError):
            scale_preset("huge")

    def test_build_trace_respects_overrides(self, tiny_trace):
        assert len(tiny_trace) == TINY["query_count"]
        assert tiny_trace.config.bucket_count == TINY["bucket_count"]

    def test_capacity_estimate_is_positive(self, tiny_trace, tiny_simulator):
        capacity = estimate_capacity_qps(tiny_trace, tiny_simulator)
        assert capacity > 0

    def test_render_table_alignment(self):
        table = render_table(("a", "value"), [(1, 2.34567), ("xx", 3)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_registry_and_unknown_name(self):
        assert set(EXPERIMENTS) == {
            "figure2",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "index_only",
            "cache_hits",
            "cache_ablation",
            "ablations",
            "elasticity",
            "recovery",
            "scaling",
            "serving",
        }

    def test_scaling_sweep_always_includes_serial_baseline(self):
        from repro.experiments import scaling

        result = scaling.run(scale="small", workers=(2,))
        assert result.rows[0][0] == 1, "speedups must be relative to 1 worker"
        assert result.rows[0][2] == pytest.approx(1.0)
        with pytest.raises(KeyError):
            run_all(names=["figure99"])


class TestFigure2:
    def test_breakeven_matches_paper(self):
        result = figure2.run()
        assert result.name == "figure2"
        assert 0.02 <= result.headline["breakeven_fraction"] <= 0.04
        # The speed-up column crosses 1.0 between the smallest and largest ratios.
        speedups = [row[-1] for row in result.rows]
        assert speedups[0] < 1.0 < speedups[-1]
        assert result.render()


class TestWorkloadFigures:
    def test_figure5_top_bucket_reuse(self, tiny_trace):
        result = figure5.run(trace=tiny_trace)
        assert len(result.rows) == 10
        assert 0.0 < result.headline["fraction_queries_touching_top10"] <= 1.0
        # Reuse counts are reported in decreasing order of rank.
        counts = [row[2] for row in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_figure6_cumulative_curve_is_monotone(self, tiny_trace):
        result = figure6.run(trace=tiny_trace)
        cumulative = [row[2] for row in result.rows]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(100.0)
        assert 0.0 < result.headline["workload_fraction_in_top_2pct"] <= 1.0


class TestSchedulingFigures:
    def test_figure7_headline_claims(self, tiny_trace, tiny_simulator):
        result = figure7.run(trace=tiny_trace, simulator=tiny_simulator)
        assert result.headline["greedy_vs_noshare_throughput"] > 1.5
        assert result.headline["rr_vs_alpha1_throughput"] == pytest.approx(1.0, abs=0.25)
        labels = [row[0] for row in result.rows]
        assert labels[0] == "NoShare" and labels[-1] == "RR"
        # NoShare has the worst (largest) normalised response time.
        normalised = {row[0]: row[3] for row in result.rows}
        assert all(normalised[label] <= 1.0 + 1e-9 for label in labels)

    def test_figure4_controller_prefers_more_aging_at_low_saturation(
        self, tiny_trace, tiny_simulator
    ):
        result = figure4.run(trace=tiny_trace, simulator=tiny_simulator)
        assert result.headline["alpha_selected_low"] >= result.headline["alpha_selected_high"]
        assert len(result.rows) == 10  # two curves x five alphas

    def test_figure8_sweep_shape(self, tiny_trace, tiny_simulator):
        result = figure8.run(
            trace=tiny_trace,
            simulator=tiny_simulator,
            capacity_fractions=(0.5, 2.0),
            alphas=(0.0, 1.0),
        )
        assert len(result.rows) == 4
        assert result.headline["greedy_capacity_qps"] > 0
        # The throughput gap between alpha=0 and alpha=1 does not shrink as
        # saturation grows (the paper's "gap widens" observation).
        assert (
            result.headline["throughput_gap_at_highest_saturation"]
            >= result.headline["throughput_gap_at_lowest_saturation"] - 1e-6
        )


class TestClaims:
    def test_cache_hits_gap(self, tiny_trace, tiny_simulator):
        result = cache_hits.run(trace=tiny_trace, simulator=tiny_simulator)
        assert result.headline["hit_rate_alpha0"] > result.headline["hit_rate_alpha1"]

    def test_index_only_slowdown(self, tiny_simulator):
        trace = build_trace(
            "small",
            query_count=80,
            bucket_count=256,
            objects_per_query_bucket_median=2_000,
            objects_per_query_bucket_sigma=0.5,
            focus_boost=2.0,
        )
        result = index_only.run(trace=trace, simulator=tiny_simulator)
        assert result.headline["index_only_slowdown_busy_time"] > 3.0

    def test_serving_experiment_reports_the_trade_off(self, tiny_trace, tiny_simulator):
        from repro.experiments import serving

        result = serving.run(
            trace=tiny_trace,
            simulator=tiny_simulator,
            alphas=(0.0, 1.0),
            intake_bound=32,
        )
        assert result.name == "serving"
        assert len(result.rows) == 2
        for alpha in (0.0, 1.0):
            suffix = f"alpha{alpha:g}"
            assert 0.0 < result.headline[f"ttfr_s_{suffix}"]
            assert result.headline[f"ttfr_s_{suffix}"] < result.headline[f"ttc_s_{suffix}"]
            assert 0.0 <= result.headline[f"rejection_rate_{suffix}"] < 1.0
        assert result.render()

    def test_ablations_table_contains_all_configurations(self, tiny_trace):
        result = ablations.run(trace=tiny_trace, cache_sizes=(5, 20))
        labels = [row[0] for row in result.rows]
        assert "cache=5" in labels and "cache=20" in labels
        assert "hybrid=on" in labels and "hybrid=off" in labels
        assert "liferaft" in labels and "least_sharable_first" in labels
        assert "metric=normalised" in labels and "metric=raw" in labels


class TestRecoveryExperiment:
    def test_cadence_sweep_keeps_parity_and_orders_lost_work(
        self, tiny_trace, tiny_simulator
    ):
        from repro.experiments import recovery

        result = recovery.run(
            trace=tiny_trace,
            simulator=tiny_simulator,
            cadences=("windows:1", "windows:8"),
        )
        assert result.name == "recovery"
        assert len(result.rows) == 2
        # Every cadence preserves the crash-parity invariant.
        assert all(row[-1] == "yes" for row in result.rows)
        # The sweep recovered from the planned crashes at both cadences.
        assert all(row[4] >= 1 for row in result.rows)
        # Sparser checkpoints can only lose as much or more work.
        fine, sparse = result.rows[0], result.rows[1]
        assert fine[1] > sparse[1]  # more checkpoints at the finer cadence
        assert fine[5] <= sparse[5]  # never more lost work at the finer cadence
        assert "lost_services_finest" in result.headline


class TestCacheAblationExperiment:
    def test_page_cache_off_vs_on_over_one_store(self, tmp_path, tiny_trace):
        from repro.experiments import cache_ablation
        from repro.experiments.common import build_simulator
        from repro.storage.ingest import materialize_layout

        simulator = build_simulator("small", bucket_count=TINY["bucket_count"])
        store_path = tmp_path / "ablation.lrbs"
        materialize_layout(store_path, simulator.layout, rows_per_bucket=16)
        result = cache_ablation.run(trace=tiny_trace, store_path=str(store_path))
        assert result.name == "cache_ablation"
        assert result.headline["virtual_invariant"] == 1.0
        by_capacity = {row[0]: row for row in result.rows}
        off, default = by_capacity[0], by_capacity[20]
        # Tier 2 off: every physical read reaches the file.
        assert off[2] == result.headline["page_reads_off"]
        # The default tier absorbs at least some repeated reads.
        assert default[2] <= off[2]
        # The virtual bucket-read counter is identical in every row.
        assert len({row[1] for row in result.rows}) == 1
