"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, worker_sweep


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure7" in output and "cache_hits" in output
        assert "scaling" in output

    def test_trace_command_prints_statistics(self, capsys):
        assert main(["trace", "--scale", "small", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "cross-match objects" in output
        assert "fraction_queries_touching_top10" in output

    def test_experiments_command_runs_named_experiment(self, capsys):
        assert main(["experiments", "figure2", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "figure2" in output
        assert "breakeven_fraction" in output

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--scale", "galactic"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestWorkerSweep:
    def test_powers_of_two_up_to_max(self):
        assert worker_sweep(8) == [1, 2, 4, 8]
        assert worker_sweep(6) == [1, 2, 4, 6]
        assert worker_sweep(1) == [1]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            worker_sweep(0)


class TestServeCommand:
    def test_serve_prints_the_serving_report(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "small",
                    "--admission",
                    "reject",
                    "--intake-bound",
                    "16",
                    "--saturation",
                    "2.0",
                    "--deadline-mix",
                    "interactive=0.5,batch=0.5",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "serving report (reject admission" in output
        assert "avg TTFR" in output
        assert "first-result SLA" in output
        assert "interactive" in output and "batch" in output

    def test_serve_rejects_bad_deadline_mix(self):
        with pytest.raises(ValueError, match="unknown deadline class"):
            main(["serve", "--scale", "small", "--deadline-mix", "warp=1"])

    def test_serve_rejects_unknown_admission_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--admission", "coin_flip"])

    def test_serve_rejects_backend_without_workers(self):
        """--backend must not be silently dropped on the serial path."""
        with pytest.raises(SystemExit, match="requires --workers"):
            main(["serve", "--scale", "small", "--backend", "process"])

    def test_serve_report_names_the_engine(self, capsys):
        assert main(["serve", "--scale", "small", "--workers", "2"]) == 0
        assert "virtual backend x2" in capsys.readouterr().out


class TestScalingCommand:
    def test_scaling_experiment_with_workers_flag(self, capsys):
        assert main(["experiments", "scaling", "--scale", "small", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "Throughput scaling with parallel workers" in output
        assert "speedup_2x" in output

    def test_workers_flag_ignored_by_non_parallel_experiments(self, capsys):
        assert main(["experiments", "figure2", "--scale", "small", "--workers", "2"]) == 0
        assert "figure2" in capsys.readouterr().out
