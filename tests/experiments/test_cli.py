"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure7" in output and "cache_hits" in output

    def test_trace_command_prints_statistics(self, capsys):
        assert main(["trace", "--scale", "small", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "cross-match objects" in output
        assert "fraction_queries_touching_top10" in output

    def test_experiments_command_runs_named_experiment(self, capsys):
        assert main(["experiments", "figure2", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "figure2" in output
        assert "breakeven_fraction" in output

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--scale", "galactic"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
