"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, worker_sweep


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure7" in output and "cache_hits" in output
        assert "scaling" in output

    def test_trace_command_prints_statistics(self, capsys):
        assert main(["trace", "--scale", "small", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "cross-match objects" in output
        assert "fraction_queries_touching_top10" in output

    def test_experiments_command_runs_named_experiment(self, capsys):
        assert main(["experiments", "figure2", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "figure2" in output
        assert "breakeven_fraction" in output

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--scale", "galactic"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestWorkerSweep:
    def test_powers_of_two_up_to_max(self):
        assert worker_sweep(8) == [1, 2, 4, 8]
        assert worker_sweep(6) == [1, 2, 4, 6]
        assert worker_sweep(1) == [1]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            worker_sweep(0)


class TestScalingCommand:
    def test_scaling_experiment_with_workers_flag(self, capsys):
        assert main(["experiments", "scaling", "--scale", "small", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "Throughput scaling with parallel workers" in output
        assert "speedup_2x" in output

    def test_workers_flag_ignored_by_non_parallel_experiments(self, capsys):
        assert main(["experiments", "figure2", "--scale", "small", "--workers", "2"]) == 0
        assert "figure2" in capsys.readouterr().out
