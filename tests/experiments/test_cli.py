"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, worker_sweep


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure7" in output and "cache_hits" in output
        assert "scaling" in output

    def test_trace_command_prints_statistics(self, capsys):
        assert main(["trace", "--scale", "small", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "cross-match objects" in output
        assert "fraction_queries_touching_top10" in output

    def test_experiments_command_runs_named_experiment(self, capsys):
        assert main(["experiments", "figure2", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "figure2" in output
        assert "breakeven_fraction" in output

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--scale", "galactic"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestWorkerSweep:
    def test_powers_of_two_up_to_max(self):
        assert worker_sweep(8) == [1, 2, 4, 8]
        assert worker_sweep(6) == [1, 2, 4, 6]
        assert worker_sweep(1) == [1]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            worker_sweep(0)


class TestServeCommand:
    def test_serve_prints_the_serving_report(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "small",
                    "--admission",
                    "reject",
                    "--intake-bound",
                    "16",
                    "--saturation",
                    "2.0",
                    "--deadline-mix",
                    "interactive=0.5,batch=0.5",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "serving report (reject admission" in output
        assert "avg TTFR" in output
        assert "first-result SLA" in output
        assert "interactive" in output and "batch" in output

    def test_serve_rejects_bad_deadline_mix(self):
        with pytest.raises(ValueError, match="unknown deadline class"):
            main(["serve", "--scale", "small", "--deadline-mix", "warp=1"])

    def test_serve_rejects_unknown_admission_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--admission", "coin_flip"])

    def test_serve_rejects_backend_without_workers(self):
        """--backend must not be silently dropped on the serial path."""
        with pytest.raises(SystemExit, match="requires --workers"):
            main(["serve", "--scale", "small", "--backend", "process"])

    def test_serve_report_names_the_engine(self, capsys):
        assert main(["serve", "--scale", "small", "--workers", "2"]) == 0
        assert "virtual backend x2" in capsys.readouterr().out


class TestScalingCommand:
    def test_scaling_experiment_with_workers_flag(self, capsys):
        assert main(["experiments", "scaling", "--scale", "small", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "Throughput scaling with parallel workers" in output
        assert "speedup_2x" in output

    def test_workers_flag_ignored_by_non_parallel_experiments(self, capsys):
        assert main(["experiments", "figure2", "--scale", "small", "--workers", "2"]) == 0
        assert "figure2" in capsys.readouterr().out


@pytest.fixture
def small_store(tmp_path):
    """A tiny ingested store (64 buckets, 16 rows each) for CLI tests."""
    path = tmp_path / "cli-site.lrbs"
    assert (
        main(
            [
                "ingest",
                "--scale",
                "small",
                "--bucket-count",
                "64",
                "--rows-per-bucket",
                "16",
                "--out",
                str(path),
            ]
        )
        == 0
    )
    return path


class TestIngestCommand:
    def test_ingest_writes_a_readable_store(self, tmp_path, capsys):
        from repro.storage.format import read_layout

        path = tmp_path / "fresh.lrbs"
        args = ["ingest", "--scale", "small", "--bucket-count", "64"]
        args += ["--rows-per-bucket", "16", "--out", str(path)]
        assert main(args) == 0
        assert path.exists()
        assert len(read_layout(path)) == 64
        output = capsys.readouterr().out
        assert "ingested density layout" in output
        assert "generation" in output

    def test_ingest_synthetic_sky(self, tmp_path, capsys):
        from repro.storage.disk_store import open_disk_store

        path = tmp_path / "sky.lrbs"
        assert (
            main(
                [
                    "ingest",
                    "--sky-objects",
                    "400",
                    "--objects-per-bucket",
                    "50",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        assert "synthetic sky" in capsys.readouterr().out
        with open_disk_store(path) as store:
            assert store.layout.total_objects() == 400
            assert len(store.bucket_image(0).objects) == 50

    def test_density_flags_conflict_with_sky_mode(self, tmp_path):
        out = str(tmp_path / "x.lrbs")
        with pytest.raises(SystemExit, match="density ingests only"):
            main(["ingest", "--sky-objects", "100", "--rows-per-bucket", "4", "--out", out])

    def test_parallel_ingest_is_byte_identical_to_serial(self, tmp_path):
        serial = tmp_path / "serial.lrbs"
        parallel = tmp_path / "parallel.lrbs"
        base = ["ingest", "--scale", "small", "--bucket-count", "32", "--rows-per-bucket", "16"]
        assert main(base + ["--out", str(serial)]) == 0
        assert main(base + ["--workers", "2", "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_ingest_rejects_non_positive_workers(self, tmp_path):
        out = str(tmp_path / "w.lrbs")
        with pytest.raises(SystemExit):
            main(["ingest", "--scale", "small", "--workers", "0", "--out", out])

    def test_ingest_rejects_non_positive_rows_per_bucket(self, tmp_path):
        out = str(tmp_path / "r.lrbs")
        with pytest.raises(SystemExit):
            main(["ingest", "--scale", "small", "--rows-per-bucket", "0", "--out", out])

    def test_sky_mode_rejects_parallel_workers(self, tmp_path):
        out = str(tmp_path / "s.lrbs")
        with pytest.raises(SystemExit, match="density ingests only"):
            main(["ingest", "--sky-objects", "100", "--workers", "2", "--out", out])

    def test_sky_flags_conflict_with_density_mode(self, tmp_path):
        out = str(tmp_path / "y.lrbs")
        with pytest.raises(SystemExit, match="sky-objects ingests only"):
            main(["ingest", "--scale", "small", "--objects-per-bucket", "10", "--out", out])


class TestRunCommand:
    def test_run_in_memory(self, capsys):
        assert main(["run", "--scale", "small", "--bucket-count", "64"]) == 0
        output = capsys.readouterr().out
        assert "memory store" in output
        assert "completed_queries" in output

    def test_run_verifies_file_memory_parity(self, small_store, capsys):
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--store-path",
                    str(small_store),
                    "--verify-against-memory",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "file store" in output
        assert "parity OK" in output

    def test_verify_requires_store_path(self):
        with pytest.raises(SystemExit, match="requires --store-path"):
            main(["run", "--scale", "small", "--verify-against-memory"])

    def test_backend_requires_workers(self):
        with pytest.raises(SystemExit, match="requires --workers"):
            main(["run", "--scale", "small", "--backend", "process"])

    def test_bucket_count_conflicts_with_store(self, small_store):
        with pytest.raises(SystemExit, match="cannot override"):
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--store-path",
                    str(small_store),
                    "--bucket-count",
                    "32",
                ]
            )


class TestStorePathFlags:
    def test_serve_from_store(self, small_store, capsys):
        assert main(["serve", "--scale", "small", "--store-path", str(small_store)]) == 0
        assert "file store" in capsys.readouterr().out

    def test_scaling_experiment_from_store(self, small_store, capsys):
        assert (
            main(
                [
                    "experiments",
                    "scaling",
                    "--scale",
                    "small",
                    "--workers",
                    "2",
                    "--store-path",
                    str(small_store),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "file-backed" in output
        assert "real read (s)" in output


class TestRecoveryFlags:
    """`liferaft run` with the reliability subsystem's flags."""

    # A window quantum of 4 bucket reads (Tb = 1.2 s) keeps the small
    # trace spanning several barriers so the injected crash actually fires.
    WINDOW_MS = "4800"

    def test_crash_injected_run_recovers_and_verifies(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--bucket-count",
                    "64",
                    "--workers",
                    "2",
                    "--inject-crash",
                    "1@1",
                    "--checkpoint-window-ms",
                    self.WINDOW_MS,
                    "--verify-recovery",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "reliability:" in output
        assert "recovery parity OK" in output

    def test_crash_injected_run_on_file_backed_store(self, small_store, capsys):
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--store-path",
                    str(small_store),
                    "--workers",
                    "2",
                    "--inject-crash",
                    "0@1",
                    "--checkpoint-window-ms",
                    self.WINDOW_MS,
                    "--verify-recovery",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "file store" in output
        assert "recovery parity OK" in output

    def test_checkpoint_dir_keeps_files(self, tmp_path, capsys):
        target = tmp_path / "ckpts"
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--bucket-count",
                    "64",
                    "--checkpoint-dir",
                    str(target),
                    "--checkpoint-every",
                    "windows:2",
                    "--checkpoint-window-ms",
                    self.WINDOW_MS,
                ]
            )
            == 0
        )
        assert list(target.glob("*.lrcp")), "explicit --checkpoint-dir retains files"
        assert "reliability:" in capsys.readouterr().out

    def test_verify_recovery_requires_inject_crash(self):
        with pytest.raises(SystemExit, match="requires --inject-crash"):
            main(["run", "--scale", "small", "--verify-recovery"])

    def test_bad_crash_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--scale", "small", "--inject-crash", "nope"])

    def test_bad_cadence_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--scale", "small", "--checkpoint-every", "sometimes"])

    def test_recovery_experiment_listed(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "recovery" in output
        assert "cache_ablation" in output

    def test_verify_recovery_fails_when_no_crash_fires(self, capsys):
        # A crash window the run never reaches must invalidate the
        # verification instead of comparing two effectively-clean runs.
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--bucket-count",
                    "64",
                    "--workers",
                    "2",
                    "--inject-crash",
                    "1@100000",
                    "--checkpoint-window-ms",
                    self.WINDOW_MS,
                    "--verify-recovery",
                ]
            )
            == 1
        )
        assert "RECOVERY VERIFICATION INVALID" in capsys.readouterr().out

    def test_out_of_range_crash_worker_rejected(self):
        with pytest.raises(SystemExit, match="0-based"):
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--workers",
                    "2",
                    "--inject-crash",
                    "2@1",
                ]
            )

    def test_window_knob_alone_does_not_enable_reliability(self):
        with pytest.raises(SystemExit, match="requires --checkpoint-dir"):
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--checkpoint-window-ms",
                    "1000",
                ]
            )
