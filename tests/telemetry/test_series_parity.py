"""Windowed time-series parity, end to end.

The series layer samples per-shard occupancy gauges at deterministic
virtual-time window barriers, rides the ``WorkerResult`` IPC seam and
the ``.lrcp`` checkpoint envelope, and merges order-insensitively.  The
contracts pinned here:

* the virtual-domain series are **bit-identical** across the serial
  engine, the ``VirtualBackend`` and the ``ProcessBackend`` at any
  fixed worker count with stealing off;
* a crash-injected recovery run reproduces its uninterrupted twin's
  series exactly (the sampling cursor rides the checkpoint);
* sampling is **zero perturbation**: enabling the series layer at any
  cadence never moves the ``result_digest``.
"""

import pytest

from repro.reliability import FaultPlan, ReliabilityConfig
from repro.service.frontend import ServiceConfig
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.telemetry.registry import VIRTUAL_DOMAIN, filter_domain, snapshot_to_json
from repro.workload.generator import TraceConfig, TraceGenerator

BUCKETS = 64
WORKER_COUNTS = (1, 2, 4)
#: Series barrier spacing in bucket-read units: fine enough that the
#: short parity trace crosses many barriers.
SERIES_BUCKET_READS = 4.0
#: Checkpoint quantum for the crash pair, in bucket-read units.
WINDOW_BUCKET_READS = 4.0


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(bucket_count=BUCKETS)


@pytest.fixture(scope="module")
def simulator(sim_config):
    return Simulator(sim_config)


@pytest.fixture(scope="module")
def series_window_ms(sim_config):
    return sim_config.cost.tb_ms * SERIES_BUCKET_READS


@pytest.fixture(scope="module")
def timed_queries():
    config = TraceConfig(query_count=40, bucket_count=BUCKETS, seed=21)
    return tuple(TraceGenerator(config).generate().with_saturation(3.0).queries)


def series_entries(result):
    """All series entries of a result's snapshot, keyed by metric key."""
    return {
        key: entry
        for key, entry in result.telemetry["metrics"].items()
        if entry.get("type") == "series"
    }


def virtual_series_json(result):
    """Canonical encoding of the parity-checked series subset."""
    virtual = filter_domain(result.telemetry, VIRTUAL_DOMAIN)
    virtual["metrics"] = {
        key: entry
        for key, entry in virtual["metrics"].items()
        if entry.get("type") == "series"
    }
    return snapshot_to_json(virtual)


@pytest.fixture(scope="module")
def serial_result(simulator, timed_queries, series_window_ms):
    return simulator.execute(timed_queries, RunSpec(series_window_ms=series_window_ms))


@pytest.fixture(scope="module")
def backend_results(simulator, timed_queries, series_window_ms):
    results = {}
    for backend in ("virtual", "process"):
        for workers in WORKER_COUNTS:
            spec = RunSpec(
                backend=backend,
                workers=workers,
                enable_stealing=False,
                series_window_ms=series_window_ms,
            )
            results[(backend, workers)] = simulator.execute(timed_queries, spec)
    return results


class TestSeriesShape:
    def test_serial_run_samples_the_shard_gauges(self, serial_result, series_window_ms):
        entries = series_entries(serial_result)
        names = {entry["name"] for entry in entries.values()}
        assert {
            "series.queue_depth",
            "series.backlog_buckets",
            "series.cache_buckets",
        } <= names
        for entry in entries.values():
            assert entry["window_ms"] == series_window_ms
            if entry["name"].startswith("series."):
                assert entry["samples"], f"{entry['name']} recorded no barriers"

    def test_samples_are_per_window_not_collapsed(self, serial_result):
        """Barrier indices ascend without duplicates: each window keeps
        its own value instead of folding into an end-of-run max."""
        for entry in series_entries(serial_result).values():
            indices = [index for index, _value in entry["samples"]]
            assert indices == sorted(set(indices))

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_every_shard_reports_its_own_lane(self, backend_results, workers):
        entries = series_entries(backend_results[("virtual", workers)])
        shards = {
            entry["labels"]["shard"]
            for entry in entries.values()
            if entry["name"] == "series.queue_depth"
        }
        assert shards == {str(shard) for shard in range(workers)}


class TestSeriesBackendParity:
    def test_serial_matches_virtual_single_worker(self, serial_result, backend_results):
        assert virtual_series_json(serial_result) == virtual_series_json(
            backend_results[("virtual", 1)]
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_virtual_matches_process(self, backend_results, workers):
        virtual = backend_results[("virtual", workers)]
        process = backend_results[("process", workers)]
        assert virtual.result_digest == process.result_digest
        assert virtual_series_json(virtual) == virtual_series_json(process)


class TestSeriesZeroPerturbation:
    def test_sampling_cadence_never_moves_the_digest(
        self, simulator, timed_queries, serial_result
    ):
        bare = simulator.execute(timed_queries, RunSpec())
        assert bare.result_digest == serial_result.result_digest

    def test_parallel_digest_unchanged_by_series(
        self, simulator, timed_queries, backend_results
    ):
        bare = simulator.execute(
            timed_queries, RunSpec(backend="virtual", workers=2, enable_stealing=False)
        )
        assert bare.result_digest == backend_results[("virtual", 2)].result_digest


class TestSeriesCrashParity:
    @pytest.fixture(scope="class")
    def reliability_pair(self, simulator, timed_queries, sim_config, series_window_ms):
        quantum_ms = sim_config.cost.tb_ms * WINDOW_BUCKET_READS

        def run(faults):
            return simulator.execute(
                timed_queries,
                RunSpec(
                    workers=2,
                    enable_stealing=False,
                    series_window_ms=series_window_ms,
                    reliability=ReliabilityConfig(
                        cadence="windows:1",
                        faults=faults,
                        window_quantum_ms=quantum_ms,
                    ),
                ),
            )

        return run(None), run(FaultPlan.parse("1@1"))

    def test_crash_actually_fired(self, reliability_pair):
        _clean, crashed = reliability_pair
        assert crashed.reliability is not None
        assert crashed.reliability.crashes_injected > 0

    def test_series_identical_to_clean_run(self, reliability_pair):
        """The sampling cursor rides the ``.lrcp`` envelope: recovery
        resumes exactly after the checkpointed barrier and replays the
        lost windows bit-identically."""
        clean, crashed = reliability_pair
        assert crashed.result_digest == clean.result_digest
        assert virtual_series_json(crashed) == virtual_series_json(clean)


class TestServingSeries:
    @pytest.fixture(scope="class")
    def served(self, simulator, timed_queries, series_window_ms):
        return simulator.execute(
            timed_queries,
            RunSpec(
                service=ServiceConfig(admission="defer", intake_bound=8),
                series_window_ms=series_window_ms,
            ),
        )

    def test_frontend_samples_pending_admissions(self, served, series_window_ms):
        entries = series_entries(served)
        pending = [
            entry
            for entry in entries.values()
            if entry["name"] == "series.pending_admissions"
        ]
        assert len(pending) == 1
        assert pending[0]["domain"] == VIRTUAL_DOMAIN
        assert pending[0]["window_ms"] == series_window_ms
        assert pending[0]["samples"]

    def test_sla_counters_match_the_serving_report(self, served):
        rows = served.serving.deadline_rows
        metrics = served.telemetry["metrics"]
        for name, admitted, rejected, completed, _first, _completion in rows:
            for field, expected in (
                ("admitted", admitted),
                ("rejected", rejected),
                ("completed", completed),
            ):
                entry = metrics[f"sla.{field}|class={name}"]
                assert entry["type"] == "counter"
                assert entry["value"] == expected

    def test_serving_digest_unchanged_by_series(self, simulator, timed_queries, served):
        bare = simulator.execute(
            timed_queries,
            RunSpec(service=ServiceConfig(admission="defer", intake_bound=8)),
        )
        assert bare.result_digest == served.result_digest
