"""The metrics registry and its merge algebra.

The merge contract is what lets snapshots ride the ``WorkerResult`` IPC
seam and fold together at the coordinator regardless of which worker
finishes first: counters and histogram buckets add, gauges take the
maximum, so (for the integer-valued metrics the engines record) the
merged snapshot is independent of input order.  The hypothesis
properties below pin down commutativity and associativity over
registries built from random operation sequences, and the JSON codec
round-trips bit-exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.registry import (
    REAL_DOMAIN,
    SNAPSHOT_VERSION,
    VIRTUAL_DOMAIN,
    MetricsRegistry,
    empty_snapshot,
    filter_domain,
    merge_snapshots,
    metric_key,
    metric_value,
    snapshot_from_json,
    snapshot_to_json,
    sum_metric,
)

HIST_BOUNDS = (1, 5, 25)

#: The metric universe the property tests draw operations from: one
#: unlabelled counter, two labelled siblings, a gauge and a histogram.
def _apply_op(registry: MetricsRegistry, op, amount: int) -> None:
    if op == 0:
        registry.counter("c").inc(amount)
    elif op == 1:
        registry.counter("c.labelled", labels={"k": "a"}).inc(amount)
    elif op == 2:
        registry.counter("c.labelled", labels={"k": "b"}).inc(amount)
    elif op == 3:
        registry.gauge("g").mark(amount)
    else:
        registry.histogram("h", HIST_BOUNDS).observe(amount)


def snapshot_from_ops(ops) -> dict:
    registry = MetricsRegistry()
    for op, amount in ops:
        _apply_op(registry, op, amount)
    return registry.snapshot()


ops_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=100)),
    max_size=30,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("engine.services") == "engine.services"

    def test_labels_sorted_into_identity(self):
        key = metric_key("io.requests", {"kind": "read", "tier": "disk"})
        assert key == metric_key("io.requests", {"tier": "disk", "kind": "read"})
        assert key == "io.requests|kind=read|tier=disk"


class TestMetricTypes:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_mark_is_high_water(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.mark(7)
        gauge.mark(3)
        assert gauge.value == 7
        gauge.set(2)
        assert gauge.value == 2

    def test_histogram_bins_with_overflow_bucket(self):
        hist = MetricsRegistry().histogram("h", HIST_BOUNDS)
        for value in (0, 1, 2, 30):
            hist.observe(value)
        # len(counts) == len(bounds) + 1; 30 lands in the overflow bucket.
        assert hist.counts == [2, 1, 0, 1]
        assert hist.count == 4
        assert hist.sum == 33

    def test_histogram_rejects_bad_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one bucket bound"):
            registry.histogram("h", ())
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h2", (1, 1, 2))


class TestRegistryIdentity:
    def test_get_or_create_returns_live_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h", HIST_BOUNDS) is registry.histogram("h", HIST_BOUNDS)

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.histogram("m", HIST_BOUNDS)

    def test_domain_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("m", domain=VIRTUAL_DOMAIN)
        with pytest.raises(ValueError, match="domain"):
            registry.counter("m", domain=REAL_DOMAIN)

    def test_histogram_bounds_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("h", HIST_BOUNDS)
        with pytest.raises(ValueError, match="different bounds"):
            registry.histogram("h", (1, 2, 3))

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry domain"):
            MetricsRegistry().counter("c", domain="imaginary")


class TestSnapshotAndRestore:
    def test_snapshot_filters_by_domain(self):
        registry = MetricsRegistry()
        registry.counter("v").inc()
        registry.counter("r", domain=REAL_DOMAIN).inc()
        assert set(registry.snapshot()["metrics"]) == {"v", "r"}
        assert set(registry.snapshot(VIRTUAL_DOMAIN)["metrics"]) == {"v"}
        assert set(registry.snapshot(REAL_DOMAIN)["metrics"]) == {"r"}

    def test_restore_none_resets_but_keeps_handles_live(self):
        """A pre-telemetry checkpoint (``None``) resets counts in place,
        so hot-path handles held by a ServiceLoop survive the recovery."""
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", HIST_BOUNDS)
        counter.inc(9)
        hist.observe(3)
        registry.restore(None)
        assert counter.value == 0
        assert hist.counts == [0] * (len(HIST_BOUNDS) + 1)
        assert hist.count == 0 and hist.sum == 0
        counter.inc(2)
        assert metric_value(registry.snapshot(), "c") == 2

    def test_restore_snapshot_mutates_in_place_and_adds_missing(self):
        source = MetricsRegistry()
        source.counter("c").inc(5)
        source.gauge("g").mark(11)
        snapshot = source.snapshot()

        target = MetricsRegistry()
        handle = target.counter("c")
        handle.inc(99)
        target.counter("stale").inc(3)
        target.restore(snapshot)
        # Existing handle now reads the restored value; metrics absent
        # from the checkpoint reset; new ones appear.
        assert handle.value == 5
        assert metric_value(target.snapshot(), "stale") == 0
        assert metric_value(target.snapshot(), "g") == 11

    def test_restore_then_replay_reproduces_snapshot(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(4)
        checkpoint = registry.snapshot()
        counter.inc(10)  # work after the checkpoint, lost in the crash
        registry.restore(checkpoint)
        counter.inc(10)  # deterministic replay re-counts it
        final = registry.snapshot()
        registry.restore(checkpoint)
        counter.inc(10)
        assert registry.snapshot() == final


class TestMergeAlgebra:
    def test_empty_snapshot_is_identity(self):
        snapshot = snapshot_from_ops([(0, 3), (4, 7)])
        assert merge_snapshots([snapshot, empty_snapshot()]) == snapshot
        assert merge_snapshots([empty_snapshot(), snapshot]) == snapshot

    def test_none_entries_are_skipped(self):
        snapshot = snapshot_from_ops([(1, 2)])
        assert merge_snapshots([None, snapshot, None]) == snapshot
        assert merge_snapshots([None, None]) == empty_snapshot()

    def test_counters_add_gauges_max_buckets_add(self):
        a = snapshot_from_ops([(0, 3), (3, 10), (4, 2)])
        b = snapshot_from_ops([(0, 4), (3, 6), (4, 30)])
        merged = merge_snapshots([a, b])
        assert metric_value(merged, "c") == 7
        assert metric_value(merged, "g") == 10
        hist = merged["metrics"]["h"]
        # 2 lands in the (1, 5] bucket, 30 in the overflow bucket.
        assert hist["counts"] == [0, 1, 0, 1]
        assert hist["count"] == 2 and hist["sum"] == 32

    def test_type_mismatch_refuses_to_merge(self):
        a = MetricsRegistry()
        a.counter("m").inc()
        b = MetricsRegistry()
        b.gauge("m").mark(1)
        with pytest.raises(ValueError, match="cannot combine"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_histogram_bound_mismatch_refuses_to_merge(self):
        a = MetricsRegistry()
        a.histogram("h", (1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", (1, 3)).observe(1)
        with pytest.raises(ValueError, match="bounds differ"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    @settings(max_examples=60)
    @given(
        ops=st.lists(ops_strategy, max_size=5),
        permutation=st.randoms(use_true_random=False),
    )
    def test_merge_is_order_insensitive(self, ops, permutation):
        snapshots = [snapshot_from_ops(worker_ops) for worker_ops in ops]
        shuffled = list(snapshots)
        permutation.shuffle(shuffled)
        assert merge_snapshots(shuffled) == merge_snapshots(snapshots)

    @settings(max_examples=60)
    @given(a=ops_strategy, b=ops_strategy, c=ops_strategy)
    def test_merge_is_associative(self, a, b, c):
        sa, sb, sc = (snapshot_from_ops(ops) for ops in (a, b, c))
        left = merge_snapshots([merge_snapshots([sa, sb]), sc])
        right = merge_snapshots([sa, merge_snapshots([sb, sc])])
        assert left == right


class TestJsonCodec:
    @settings(max_examples=60)
    @given(ops=ops_strategy)
    def test_round_trip_is_exact(self, ops):
        snapshot = snapshot_from_ops(ops)
        assert snapshot_from_json(snapshot_to_json(snapshot)) == snapshot

    def test_encoding_is_deterministic(self):
        # Same logical content built in different insertion orders
        # serializes identically (sorted keys).
        a = snapshot_from_ops([(0, 1), (3, 2)])
        b = snapshot_from_ops([(3, 2), (0, 1)])
        assert snapshot_to_json(a) == snapshot_to_json(b)

    def test_rejects_non_snapshot(self):
        with pytest.raises(ValueError, match="missing 'metrics'"):
            snapshot_from_json("{}")
        with pytest.raises(ValueError, match="missing 'metrics'"):
            snapshot_from_json('"just a string"')

    def test_rejects_unknown_version(self):
        bad = {"version": SNAPSHOT_VERSION + 1, "metrics": {}}
        with pytest.raises(ValueError, match="unsupported metrics snapshot version"):
            snapshot_from_json(snapshot_to_json(bad))

    def test_rejects_malformed_entry(self):
        bad = {
            "version": SNAPSHOT_VERSION,
            "metrics": {"m": {"type": "thermometer", "name": "m", "value": 1}},
        }
        with pytest.raises(ValueError, match="unknown type"):
            snapshot_from_json(snapshot_to_json(bad))


def _series_snapshot(samples, name="s", window_ms=100.0, labels=None):
    registry = MetricsRegistry()
    series = registry.series(name, window_ms, labels=labels)
    for index, value in samples:
        series.record(index, value)
    return registry.snapshot()


class TestSeries:
    def test_record_enforces_ascending_indices(self):
        series = MetricsRegistry().series("s", 100.0)
        series.record(0, 3)
        series.record(2, 5)  # gaps are fine: windows with no samples stay absent
        assert series.sample_count == 2
        with pytest.raises(ValueError, match="not\\s+after the last recorded index"):
            series.record(2, 7)
        with pytest.raises(ValueError, match="not\\s+after the last recorded index"):
            series.record(1, 7)

    def test_window_ms_must_be_positive(self):
        with pytest.raises(ValueError, match="positive window_ms"):
            MetricsRegistry().series("s", 0.0)

    def test_get_or_create_pins_window_ms(self):
        registry = MetricsRegistry()
        series = registry.series("s", 100.0)
        assert registry.series("s", 100.0) is series
        with pytest.raises(ValueError, match="different window_ms"):
            registry.series("s", 50.0)

    def test_series_counts_as_sample_count_in_lookups(self):
        snapshot = _series_snapshot([(0, 10), (1, 20), (2, 30)])
        assert metric_value(snapshot, "s") == 3
        assert sum_metric(snapshot, "s") == 3

    def test_round_trips_through_json(self):
        snapshot = _series_snapshot([(0, 10), (3, 2.5)])
        assert snapshot_from_json(snapshot_to_json(snapshot)) == snapshot

    def test_restore_rewinds_the_sampling_cursor(self):
        """The crash-recovery path: a restored series resumes recording
        exactly after the checkpointed barrier."""
        registry = MetricsRegistry()
        series = registry.series("s", 100.0)
        series.record(0, 1)
        checkpoint = registry.snapshot()
        series.record(1, 2)  # lost in the crash
        registry.restore(checkpoint)
        assert series.sample_count == 1
        series.record(1, 2)  # deterministic replay re-records it
        assert series.samples == [[0, 1], [1, 2]]


class TestSeriesMergeAlgebra:
    """Satellite fix: windowed samples union by barrier index instead of
    collapsing to a global max like end-of-run gauges."""

    def test_disjoint_shards_concatenate_by_window_index(self):
        a = _series_snapshot([(0, 10), (1, 20)], labels={"shard": "0"})
        b = _series_snapshot([(0, 7), (1, 90)], labels={"shard": "1"})
        merged = merge_snapshots([a, b])
        key_a = metric_key("s", {"shard": "0"})
        key_b = metric_key("s", {"shard": "1"})
        # Per-shard values survive verbatim — no cross-shard max.
        assert merged["metrics"][key_a]["samples"] == [[0, 10], [1, 20]]
        assert merged["metrics"][key_b]["samples"] == [[0, 7], [1, 90]]

    def test_same_key_unions_and_sorts_by_index(self):
        a = _series_snapshot([(0, 10), (2, 30)])
        b = _series_snapshot([(1, 20)])
        merged = merge_snapshots([a, b])
        assert merged["metrics"]["s"]["samples"] == [[0, 10], [1, 20], [2, 30]]

    def test_merge_is_order_insensitive(self):
        a = _series_snapshot([(0, 10), (2, 30)])
        b = _series_snapshot([(1, 20), (3, 40)])
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    def test_equal_duplicate_windows_are_tolerated(self):
        """Recovery replay re-produces samples bit-identically, so the
        same (index, value) pair arriving twice is not a conflict."""
        a = _series_snapshot([(0, 10), (1, 20)])
        b = _series_snapshot([(1, 20), (2, 30)])
        merged = merge_snapshots([a, b])
        assert merged["metrics"]["s"]["samples"] == [[0, 10], [1, 20], [2, 30]]

    def test_conflicting_window_values_refuse_to_merge(self):
        a = _series_snapshot([(1, 20)])
        b = _series_snapshot([(1, 21)])
        with pytest.raises(ValueError, match="conflicting samples at window 1"):
            merge_snapshots([a, b])

    def test_window_ms_mismatch_refuses_to_merge(self):
        a = _series_snapshot([(0, 1)], window_ms=100.0)
        b = _series_snapshot([(0, 1)], window_ms=200.0)
        with pytest.raises(ValueError, match="window_ms differs"):
            merge_snapshots([a, b])

    def test_series_and_gauge_refuse_to_merge(self):
        a = _series_snapshot([(0, 1)])
        b = MetricsRegistry()
        b.gauge("s").mark(1)
        with pytest.raises(ValueError, match="cannot combine"):
            merge_snapshots([a, b.snapshot()])


class TestLookupHelpers:
    def test_metric_value_handles_absent_and_none(self):
        assert metric_value(None, "c") == 0
        assert metric_value(empty_snapshot(), "c") == 0
        snapshot = snapshot_from_ops([(4, 3), (4, 9)])
        assert metric_value(snapshot, "h") == 2  # histogram -> observation count

    def test_sum_metric_totals_label_combinations(self):
        snapshot = snapshot_from_ops([(1, 5), (2, 7)])
        assert sum_metric(snapshot, "c.labelled") == 12
        assert sum_metric(None, "c.labelled") == 0

    def test_filter_domain(self):
        registry = MetricsRegistry()
        registry.counter("v").inc()
        registry.counter("r", domain=REAL_DOMAIN).inc()
        snapshot = registry.snapshot()
        assert set(filter_domain(snapshot, VIRTUAL_DOMAIN)["metrics"]) == {"v"}
        assert set(filter_domain(snapshot, REAL_DOMAIN)["metrics"]) == {"r"}
        assert filter_domain(None, VIRTUAL_DOMAIN) == empty_snapshot()
        with pytest.raises(ValueError, match="unknown telemetry domain"):
            filter_domain(snapshot, "imaginary")
