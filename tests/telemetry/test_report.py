"""Run reports and snapshot diffs (`liferaft report`, `inspect --diff`).

Both are pure presentation over exported snapshots, so the tests build
small registries in memory and check the rendered sections and the diff
rows directly.
"""

import json

from repro.telemetry.registry import MetricsRegistry, REAL_DOMAIN
from repro.telemetry.report import (
    diff_snapshots,
    render_diff,
    render_report,
    report_to_json,
)


def serving_snapshot(queue_peak=5, admitted=9):
    registry = MetricsRegistry()
    registry.counter("engine.queries_completed").inc(admitted)
    registry.gauge("cache.buckets_peak").mark(queue_peak)
    registry.histogram("svc.batch_ms", (1, 10), domain=REAL_DOMAIN).observe(3)
    series = registry.series("series.queue_depth", 100.0, labels={"shard": "0"})
    series.record(0, 2)
    series.record(1, queue_peak)
    registry.counter("sla.admitted", labels={"class": "interactive"}).inc(admitted)
    registry.counter("sla.completed", labels={"class": "interactive"}).inc(admitted)
    registry.counter("reliability.checkpoints_written", domain=REAL_DOMAIN).inc(4)
    return registry.snapshot()


class TestRenderReport:
    def test_sections_render_in_order(self):
        report = render_report(serving_snapshot())
        positions = [
            report.index(marker)
            for marker in ("== metrics ==", "== series ==", "== SLA ==", "== events ==")
        ]
        assert positions == sorted(positions)

    def test_header_counts_domains(self):
        report = render_report(serving_snapshot())
        # 5 virtual metrics (counter, gauge, series, 2 sla) + 2 real.
        assert report.splitlines()[0] == "snapshot v2: 5 virtual + 2 real metrics"

    def test_series_row_shows_window_and_range(self):
        report = render_report(serving_snapshot())
        series_line = next(
            line for line in report.splitlines() if "series.queue_depth" in line
        )
        assert "shard=0" in series_line
        assert "n=2" in series_line and "window=100ms" in series_line

    def test_sla_section_groups_by_class(self):
        report = render_report(serving_snapshot(admitted=9))
        sla_line = next(
            line for line in report.splitlines() if line.startswith("interactive")
        )
        cells = sla_line.split()
        assert cells[:4] == ["interactive", "9", "0", "9"]

    def test_events_section_lists_reliability_counters(self):
        report = render_report(serving_snapshot())
        assert "reliability.checkpoints_written" in report.split("== events ==")[1]

    def test_empty_snapshot_renders_just_the_header(self):
        report = render_report(MetricsRegistry().snapshot())
        assert report == "snapshot v2: 0 virtual + 0 real metrics"


class TestReportToJson:
    def test_sections_mirror_the_text_report(self):
        report = report_to_json(serving_snapshot(admitted=9))
        assert report["domains"] == {"virtual": 5, "real": 2}
        by_name = {row["metric"]: row for row in report["metrics"]}
        assert by_name["engine.queries_completed"]["value"] == 9  # numeric, unformatted
        assert by_name["sla.admitted"]["labels"] == {"class": "interactive"}
        assert by_name["svc.batch_ms"]["count"] == 1
        assert "series.queue_depth" not in by_name  # series get their own section
        (series,) = report["series"]
        assert series["name"] == "series.queue_depth"
        assert series["labels"] == {"shard": "0"}
        assert series["window_ms"] == 100.0
        assert series["samples"] == [[0, 2], [1, 5]]
        assert report["sla"]["interactive"]["admitted"] == 9
        events = {row["event"]: row["count"] for row in report["events"]}
        assert events["reliability.checkpoints_written"] == 4

    def test_output_is_json_serialisable(self):
        report = report_to_json(serving_snapshot())
        assert json.loads(json.dumps(report, sort_keys=True)) == report

    def test_empty_snapshot(self):
        report = report_to_json(MetricsRegistry().snapshot())
        assert report["domains"] == {"virtual": 0, "real": 0}
        assert report["metrics"] == [] and report["series"] == []
        assert report["sla"] == {} and report["events"] == []


class TestDiffSnapshots:
    def test_identical_snapshots_diff_empty(self):
        assert diff_snapshots(serving_snapshot(), serving_snapshot()) == []
        text = render_diff(serving_snapshot(), serving_snapshot(), "x", "y")
        assert text == "snapshots x and y are identical"

    def test_value_change_reports_delta(self):
        rows = diff_snapshots(serving_snapshot(admitted=9), serving_snapshot(admitted=12))
        changed = {key: delta for key, status, delta in rows if status == "changed"}
        assert changed["engine.queries_completed"] == "9 -> 12 (+3)"

    def test_series_change_reports_sample_deltas(self):
        rows = dict(
            (key, (status, delta))
            for key, status, delta in diff_snapshots(
                serving_snapshot(queue_peak=5), serving_snapshot(queue_peak=8)
            )
        )
        status, delta = rows["series.queue_depth|shard=0"]
        assert status == "changed"
        assert "1 changed" in delta

    def test_series_length_difference_reports_additions(self):
        # A longer-running second snapshot must not diff clean just
        # because its extra windows have nothing to compare against.
        a = serving_snapshot()
        b = serving_snapshot()
        b["metrics"]["series.queue_depth|shard=0"]["samples"].append([2, 7])
        rows = dict(
            (key, (status, delta)) for key, status, delta in diff_snapshots(a, b)
        )
        status, delta = rows["series.queue_depth|shard=0"]
        assert status == "changed"
        assert delta == "samples 2 -> 3, 1 added"
        # And symmetrically as removals in the other direction.
        _, reverse_delta = dict(
            (key, (status, delta)) for key, status, delta in diff_snapshots(b, a)
        )["series.queue_depth|shard=0"]
        assert reverse_delta == "samples 3 -> 2, 1 removed"

    def test_only_in_one_side(self):
        a = serving_snapshot()
        b = serving_snapshot()
        extra = MetricsRegistry()
        extra.counter("only.here").inc(1)
        b["metrics"]["only.here"] = extra.snapshot()["metrics"]["only.here"]
        rows = diff_snapshots(a, b)
        assert ("only.here", "only-b", "1") in rows
        rows_reversed = diff_snapshots(b, a)
        assert ("only.here", "only-a", "1") in rows_reversed

    def test_type_change_is_reported(self):
        a = serving_snapshot()
        b = serving_snapshot()
        gauge_entry = b["metrics"]["cache.buckets_peak"]
        b["metrics"]["cache.buckets_peak"] = dict(gauge_entry, type="counter")
        rows = diff_snapshots(a, b)
        assert ("cache.buckets_peak", "type-changed", "gauge -> counter") in rows

    def test_render_diff_tabulates_the_rows(self):
        text = render_diff(serving_snapshot(admitted=9), serving_snapshot(admitted=12))
        lines = text.splitlines()
        assert lines[0].endswith("(a -> b)")
        assert lines[1].split() == ["metric", "status", "delta"]
