"""The ``.lrrun`` run-archive codec and the ``compare`` drift grading.

The codec half follows the repo's container discipline (magic, version,
CRC-32, atomic write): round-trips are exact, and every corruption mode
— truncation, bit flips, wrong magic, version skew, undecodable payload
— raises the typed :class:`ArchiveFormatError` rather than garbage.
The compare half grades drift the way the CLI's exit code does: 0 for
two runs of the same spec, 1 for telemetry/ledger drift, 2 the moment
the result digests disagree.
"""

import json
import struct

import pytest

from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.telemetry.archive import (
    ARCHIVE_MAGIC,
    ARCHIVE_VERSION,
    ArchiveFormatError,
    RunArchive,
    compare_archives,
    describe_run_spec,
    read_run_archive,
    render_compare,
    summarise_result,
    write_run_archive,
)
from repro.workload.generator import TraceConfig, TraceGenerator

BUCKETS = 64
_HEADER = struct.Struct("<4sHHQI")


@pytest.fixture(scope="module")
def simulator():
    return Simulator(SimulationConfig(bucket_count=BUCKETS))


@pytest.fixture(scope="module")
def timed_queries():
    config = TraceConfig(query_count=40, bucket_count=BUCKETS, seed=21)
    return tuple(TraceGenerator(config).generate().with_saturation(3.0).queries)


def sample_archive():
    return RunArchive(
        spec={"policy": "lifo", "workers": 2},
        result={"result_digest": "abc123", "completed_queries": 7},
        telemetry={"version": 1, "metrics": [], "series": [], "events": []},
        ledger={"version": 1, "queries": [], "totals": {}},
    )


class TestCodec:
    def test_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "run.lrrun"
        archive = sample_archive()
        size = write_run_archive(str(path), archive)
        assert size == path.stat().st_size
        loaded = read_run_archive(str(path))
        assert loaded == archive
        assert loaded.result_digest == "abc123"

    def test_none_sections_survive(self, tmp_path):
        path = tmp_path / "bare.lrrun"
        archive = RunArchive(spec={}, result={}, telemetry=None, ledger=None)
        write_run_archive(str(path), archive)
        loaded = read_run_archive(str(path))
        assert loaded.telemetry is None and loaded.ledger is None
        assert loaded.result_digest == ""

    def test_header_magic_and_version(self, tmp_path):
        path = tmp_path / "run.lrrun"
        write_run_archive(str(path), sample_archive())
        magic, version, _flags, body_len, _crc = _HEADER.unpack_from(path.read_bytes())
        assert magic == ARCHIVE_MAGIC
        assert version == ARCHIVE_VERSION
        assert _HEADER.size + body_len == path.stat().st_size

    def test_no_temp_file_left_behind(self, tmp_path):
        write_run_archive(str(tmp_path / "run.lrrun"), sample_archive())
        assert [p.name for p in tmp_path.iterdir()] == ["run.lrrun"]

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.lrrun"
        path.write_bytes(b"LR")
        with pytest.raises(ArchiveFormatError, match="header incomplete"):
            read_run_archive(str(path))

    def test_truncated_body_rejected(self, tmp_path):
        path = tmp_path / "run.lrrun"
        write_run_archive(str(path), sample_archive())
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])
        with pytest.raises(ArchiveFormatError, match="payload bytes"):
            read_run_archive(str(path))

    def test_flipped_body_byte_fails_crc(self, tmp_path):
        path = tmp_path / "run.lrrun"
        write_run_archive(str(path), sample_archive())
        raw = bytearray(path.read_bytes())
        raw[_HEADER.size + 5] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ArchiveFormatError, match="CRC mismatch"):
            read_run_archive(str(path))

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "run.lrrun"
        write_run_archive(str(path), sample_archive())
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(ArchiveFormatError, match="magic"):
            read_run_archive(str(path))

    def test_version_skew_rejected(self, tmp_path):
        path = tmp_path / "run.lrrun"
        archive = sample_archive()
        future = RunArchive(
            spec=archive.spec,
            result=archive.result,
            telemetry=archive.telemetry,
            ledger=archive.ledger,
            version=ARCHIVE_VERSION + 1,
        )
        write_run_archive(str(path), future)
        with pytest.raises(ArchiveFormatError, match="version"):
            read_run_archive(str(path))

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "run.lrrun"
        body = json.dumps([1, 2, 3]).encode("utf-8")
        import zlib

        header = _HEADER.pack(
            ARCHIVE_MAGIC, ARCHIVE_VERSION, 0, len(body), zlib.crc32(body) & 0xFFFFFFFF
        )
        path.write_bytes(header + body)
        with pytest.raises(ArchiveFormatError, match="not an object"):
            read_run_archive(str(path))


class TestSpecAndResultDescriptions:
    def test_describe_run_spec_is_json_safe(self):
        described = describe_run_spec(
            RunSpec(backend="virtual", workers=4, enable_stealing=False, label="x")
        )
        assert json.loads(json.dumps(described)) == described
        assert described["backend"] == "virtual"
        assert described["workers"] == 4
        assert described["reliability"] is None

    def test_serial_spec_describes_serial_backend(self):
        assert describe_run_spec(RunSpec())["backend"] == "serial"

    def test_summarise_result_carries_digest(self, simulator, timed_queries):
        result = simulator.execute(timed_queries, RunSpec())
        summary = summarise_result(result)
        assert summary["result_digest"] == result.result_digest
        assert summary["completed_queries"] == result.completed_queries
        assert json.loads(json.dumps(summary)) == summary


class TestCompareDriftGrades:
    @pytest.fixture(scope="class")
    def archived_pair(self, simulator, timed_queries, tmp_path_factory):
        """Two independent runs of the identical spec, archived."""
        root = tmp_path_factory.mktemp("archives")
        paths = []
        for name in ("a.lrrun", "b.lrrun"):
            path = root / name
            simulator.execute(timed_queries, RunSpec(archive_out=str(path)))
            paths.append(str(path))
        return tuple(read_run_archive(path) for path in paths)

    def test_identical_spec_runs_compare_clean(self, archived_pair):
        report = compare_archives(*archived_pair)
        assert report.exit_code == 0
        assert not report.digest_drift and not report.telemetry_drift
        assert report.metric_rows == [] and report.ledger_rows == []
        assert "no drift" in render_compare(report)

    def test_different_policy_grades_digest_drift(
        self, simulator, timed_queries, archived_pair, tmp_path
    ):
        path = tmp_path / "other.lrrun"
        simulator.execute(
            timed_queries, RunSpec(policy="round_robin", archive_out=str(path))
        )
        report = compare_archives(archived_pair[0], read_run_archive(str(path)))
        assert report.digest_drift
        assert report.exit_code == 2
        assert any(key == "spec.policy" for key, _, _ in report.spec_rows)
        assert "digest DRIFT" in render_compare(report)

    def test_ledger_drift_alone_grades_exit_one(self, archived_pair):
        a, b = archived_pair
        tampered_ledger = json.loads(json.dumps(b.ledger))
        tampered_ledger["queries"][0]["makespan_ms"] += 1.0
        tampered = RunArchive(
            spec=b.spec, result=b.result, telemetry=b.telemetry, ledger=tampered_ledger
        )
        report = compare_archives(a, tampered)
        assert not report.digest_drift
        assert report.telemetry_drift
        assert report.exit_code == 1
        assert any(status == "changed" for _, status, _ in report.ledger_rows)
        assert "telemetry drift" in render_compare(report)

    def test_archive_ledger_matches_live_result(self, simulator, timed_queries, tmp_path):
        path = tmp_path / "live.lrrun"
        result = simulator.execute(timed_queries, RunSpec(archive_out=str(path)))
        archive = read_run_archive(str(path))
        assert archive.ledger == result.ledger
        assert archive.result_digest == result.result_digest
        assert archive.telemetry == json.loads(json.dumps(result.telemetry))
