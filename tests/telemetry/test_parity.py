"""The telemetry subsystem's headline guarantees, end to end.

Two contracts pinned down here:

* **Zero perturbation** — instrumentation never moves the virtual
  clock: a run with telemetry disabled produces the identical
  ``result_digest`` (it only loses the snapshot attachment).
* **Virtual-domain parity** — the virtual-domain half of the merged
  snapshot is bit-identical across the serial engine, the
  ``VirtualBackend`` and the ``ProcessBackend`` at any fixed worker
  count with stealing off, and identical between a crash-injected
  recovery run and its uninterrupted twin (checkpointed counters are
  restored and replay re-counts exactly).
"""

import pytest

from repro.reliability import FaultPlan, ReliabilityConfig
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.telemetry.registry import (
    SNAPSHOT_VERSION,
    VIRTUAL_DOMAIN,
    filter_domain,
    metric_value,
    snapshot_to_json,
    sum_metric,
)
from repro.workload.generator import TraceConfig, TraceGenerator

BUCKETS = 64
WORKER_COUNTS = (1, 2, 4)
#: Window quantum in bucket-read units: fine enough that reliability
#: runs span several barriers, so the crash plan below actually fires.
WINDOW_BUCKET_READS = 4.0


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(bucket_count=BUCKETS)


@pytest.fixture(scope="module")
def simulator(sim_config):
    return Simulator(sim_config)


@pytest.fixture(scope="module")
def timed_queries():
    config = TraceConfig(query_count=40, bucket_count=BUCKETS, seed=21)
    return tuple(TraceGenerator(config).generate().with_saturation(3.0).queries)


def virtual_json(result):
    """The parity-checked half of a result's snapshot, canonically encoded."""
    return snapshot_to_json(filter_domain(result.telemetry, VIRTUAL_DOMAIN))


@pytest.fixture(scope="module")
def serial_result(simulator, timed_queries):
    return simulator.execute(timed_queries, RunSpec())


@pytest.fixture(scope="module")
def backend_results(simulator, timed_queries):
    results = {}
    for backend in ("virtual", "process"):
        for workers in WORKER_COUNTS:
            spec = RunSpec(backend=backend, workers=workers, enable_stealing=False)
            results[(backend, workers)] = simulator.execute(timed_queries, spec)
    return results


class TestZeroPerturbation:
    def test_serial_digest_unchanged_with_telemetry_off(
        self, simulator, timed_queries, serial_result
    ):
        off = simulator.execute(timed_queries, RunSpec(telemetry=False))
        assert off.telemetry is None
        assert serial_result.telemetry is not None
        assert off.result_digest == serial_result.result_digest

    def test_parallel_digest_unchanged_with_telemetry_off(
        self, simulator, timed_queries, backend_results
    ):
        off = simulator.execute(
            timed_queries,
            RunSpec(backend="virtual", workers=2, enable_stealing=False, telemetry=False),
        )
        assert off.telemetry is None
        assert off.result_digest == backend_results[("virtual", 2)].result_digest


class TestCrossBackendParity:
    def test_serial_matches_virtual_single_worker(self, serial_result, backend_results):
        assert virtual_json(serial_result) == virtual_json(backend_results[("virtual", 1)])

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_virtual_matches_process(self, backend_results, workers):
        virtual = backend_results[("virtual", workers)]
        process = backend_results[("process", workers)]
        assert virtual.result_digest == process.result_digest
        assert virtual_json(virtual) == virtual_json(process)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_snapshot_shape(self, backend_results, workers):
        snapshot = backend_results[("virtual", workers)].telemetry
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert snapshot["metrics"], "instrumented run produced no metrics"


class TestSnapshotMatchesResult:
    """The merged counters agree with the result's own accounting."""

    def test_serial_counters_match_parity_fields(self, serial_result):
        snapshot = serial_result.telemetry
        assert (
            metric_value(snapshot, "engine.queries_completed")
            == serial_result.completed_queries
        )
        assert metric_value(snapshot, "engine.services") == serial_result.bucket_services
        assert metric_value(snapshot, "store.bucket_reads") == serial_result.bucket_reads

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_merged_worker_counters_match_parity_fields(self, backend_results, workers):
        result = backend_results[("virtual", workers)]
        snapshot = result.telemetry
        # Each bucket service is counted exactly once, on the shard that
        # ran it, so the merged totals match the run's accounting.
        assert metric_value(snapshot, "engine.services") == result.bucket_services
        assert sum_metric(snapshot, "engine.strategy_services") == result.bucket_services
        # Shard-local completions: a query spanning several shards
        # completes once per shard, so the merged counter is bounded
        # below by the distinct-query count (equal at one worker).
        assert metric_value(snapshot, "engine.queries_completed") >= result.completed_queries
        if workers == 1:
            assert (
                metric_value(snapshot, "engine.queries_completed")
                == result.completed_queries
            )


class TestCrashTelemetryParity:
    @pytest.fixture(scope="class")
    def reliability_pair(self, simulator, timed_queries, sim_config):
        quantum_ms = sim_config.cost.tb_ms * WINDOW_BUCKET_READS

        def run(faults):
            return simulator.execute(
                timed_queries,
                RunSpec(
                    workers=2,
                    enable_stealing=False,
                    reliability=ReliabilityConfig(
                        cadence="windows:1",
                        faults=faults,
                        window_quantum_ms=quantum_ms,
                    ),
                ),
            )

        return run(None), run(FaultPlan.parse("1@1"))

    def test_crash_actually_fired(self, reliability_pair):
        _clean, crashed = reliability_pair
        assert crashed.reliability is not None
        assert crashed.reliability.crashes_injected > 0
        assert crashed.reliability.recovery_count == crashed.reliability.crashes_injected

    def test_virtual_domain_identical_to_clean_run(self, reliability_pair):
        clean, crashed = reliability_pair
        assert crashed.result_digest == clean.result_digest
        assert virtual_json(crashed) == virtual_json(clean)

    def test_real_domain_records_the_reliability_story(self, reliability_pair):
        clean, crashed = reliability_pair
        snapshot = crashed.telemetry
        assert (
            metric_value(snapshot, "reliability.crashes_injected")
            == crashed.reliability.crashes_injected
        )
        assert (
            metric_value(snapshot, "reliability.recoveries")
            == crashed.reliability.recovery_count
        )
        assert metric_value(snapshot, "reliability.checkpoints_written") > 0
        # The clean twin has checkpoints but no crash counters at all.
        assert metric_value(clean.telemetry, "reliability.crashes_injected") == 0
        assert metric_value(clean.telemetry, "coordinator.windows") > 0
