"""CLI surface of the telemetry subsystem.

``liferaft run --metrics-out/--trace-out`` export the merged snapshot
and the span timeline; ``liferaft inspect`` renders an exported
snapshot; ``liferaft serve`` surfaces the deadline tracker's SLA
summary in its report.
"""

import json

import pytest

from repro.cli import main
from repro.telemetry.registry import SNAPSHOT_VERSION, snapshot_from_json
from repro.telemetry.spans import validate_chrome_trace


@pytest.fixture
def exported(tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    trace = tmp_path / "trace.json"
    assert (
        main(
            [
                "run",
                "--scale",
                "small",
                "--bucket-count",
                "64",
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
            ]
        )
        == 0
    )
    return metrics, trace, capsys.readouterr().out


class TestRunExports:
    def test_run_reports_and_writes_both_files(self, exported):
        metrics, trace, output = exported
        assert "wrote metrics snapshot" in output
        assert "wrote span timeline" in output
        assert metrics.exists() and trace.exists()

    def test_metrics_file_is_a_valid_snapshot(self, exported):
        metrics, _trace, _output = exported
        snapshot = snapshot_from_json(metrics.read_text(encoding="utf-8"))
        assert snapshot["version"] == SNAPSHOT_VERSION
        entries = snapshot["metrics"].values()
        assert any(entry["domain"] == "virtual" for entry in entries)
        assert any(entry["name"] == "engine.queries_completed" for entry in entries)

    def test_trace_file_is_perfetto_loadable(self, exported):
        _metrics, trace, _output = exported
        loaded = json.loads(trace.read_text(encoding="utf-8"))
        validate_chrome_trace(loaded)
        assert loaded["otherData"]["clock"] == "virtual"
        assert any(event["ph"] == "X" for event in loaded["traceEvents"])


class TestInspectCommand:
    def test_inspect_renders_the_snapshot(self, exported, capsys):
        metrics, _trace, _output = exported
        assert main(["inspect", str(metrics)]) == 0
        output = capsys.readouterr().out
        assert "virtual-domain" in output
        assert "engine.queries_completed" in output
        assert "counter" in output

    def test_inspect_rejects_a_non_snapshot_file(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}", encoding="utf-8")
        with pytest.raises(SystemExit, match="missing 'metrics'"):
            main(["inspect", str(bogus)])

    def test_inspect_rejects_a_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["inspect", str(tmp_path / "absent.json")])


class TestServeSlaSummary:
    def test_serve_prints_the_overall_sla_line(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "small",
                    "--deadline-mix",
                    "interactive=0.5,batch=0.5",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "SLA overall:" in output
        assert "first-result" in output and "completion" in output
