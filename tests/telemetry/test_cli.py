"""CLI surface of the telemetry subsystem.

``liferaft run --metrics-out/--trace-out`` export the merged snapshot
and the span timeline; ``liferaft inspect`` renders an exported
snapshot; ``liferaft serve`` surfaces the deadline tracker's SLA
summary in its report.
"""

import json

import pytest

from repro.cli import main
from repro.telemetry.registry import SNAPSHOT_VERSION, snapshot_from_json
from repro.telemetry.spans import validate_chrome_trace


@pytest.fixture
def exported(tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    trace = tmp_path / "trace.json"
    assert (
        main(
            [
                "run",
                "--scale",
                "small",
                "--bucket-count",
                "64",
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
            ]
        )
        == 0
    )
    return metrics, trace, capsys.readouterr().out


class TestRunExports:
    def test_run_reports_and_writes_both_files(self, exported):
        metrics, trace, output = exported
        assert "wrote metrics snapshot" in output
        assert "wrote span timeline" in output
        assert metrics.exists() and trace.exists()

    def test_metrics_file_is_a_valid_snapshot(self, exported):
        metrics, _trace, _output = exported
        snapshot = snapshot_from_json(metrics.read_text(encoding="utf-8"))
        assert snapshot["version"] == SNAPSHOT_VERSION
        entries = snapshot["metrics"].values()
        assert any(entry["domain"] == "virtual" for entry in entries)
        assert any(entry["name"] == "engine.queries_completed" for entry in entries)

    def test_trace_file_is_perfetto_loadable(self, exported):
        _metrics, trace, _output = exported
        loaded = json.loads(trace.read_text(encoding="utf-8"))
        validate_chrome_trace(loaded)
        assert loaded["otherData"]["clock"] == "virtual"
        assert any(event["ph"] == "X" for event in loaded["traceEvents"])


class TestInspectCommand:
    def test_inspect_renders_the_snapshot(self, exported, capsys):
        metrics, _trace, _output = exported
        assert main(["inspect", str(metrics)]) == 0
        output = capsys.readouterr().out
        assert "virtual-domain" in output
        assert "engine.queries_completed" in output
        assert "counter" in output

    def test_inspect_rejects_a_non_snapshot_file(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}", encoding="utf-8")
        with pytest.raises(SystemExit, match="missing 'metrics'"):
            main(["inspect", str(bogus)])

    def test_inspect_rejects_a_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["inspect", str(tmp_path / "absent.json")])


class TestInspectDiff:
    def test_identical_snapshots_exit_zero(self, exported, capsys):
        metrics, _trace, _output = exported
        assert main(["inspect", str(metrics), "--diff", str(metrics)]) == 0
        assert "are identical" in capsys.readouterr().out

    def test_differing_snapshots_exit_nonzero(self, exported, tmp_path, capsys):
        metrics, _trace, _output = exported
        other = tmp_path / "other-metrics.json"
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "small",
                    "--bucket-count",
                    "64",
                    "--seed",
                    "99",
                    "--metrics-out",
                    str(other),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["inspect", str(metrics), "--diff", str(other)]) == 1
        output = capsys.readouterr().out
        assert "metrics differ" in output
        assert "status" in output and "delta" in output


class TestReportCommand:
    def test_report_renders_sections(self, exported, capsys):
        metrics, _trace, _output = exported
        assert main(["report", str(metrics)]) == 0
        output = capsys.readouterr().out
        assert "snapshot v" in output
        assert "== metrics ==" in output
        assert "== series ==" in output
        assert "engine.queries_completed" in output

    def test_report_rejects_a_non_snapshot_file(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}", encoding="utf-8")
        with pytest.raises(SystemExit, match="missing 'metrics'"):
            main(["report", str(bogus)])


class TestReportJsonFormat:
    def test_json_format_emits_machine_readable_sections(self, exported, capsys):
        metrics, _trace, _output = exported
        assert main(["report", str(metrics), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"version", "domains", "metrics", "series", "sla", "events"}
        assert report["domains"]["virtual"] > 0
        names = {row["metric"] for row in report["metrics"]}
        assert "engine.queries_completed" in names

    def test_text_is_still_the_default(self, exported, capsys):
        metrics, _trace, _output = exported
        assert main(["report", str(metrics)]) == 0
        assert "== metrics ==" in capsys.readouterr().out


class TestCompareCommand:
    @pytest.fixture
    def archives(self, tmp_path, capsys):
        paths = []
        for name in ("a.lrrun", "b.lrrun"):
            path = tmp_path / name
            args = ["run", "--scale", "small", "--bucket-count", "64"]
            assert main(args + ["--archive-out", str(path)]) == 0
            paths.append(str(path))
        capsys.readouterr()
        return paths

    def test_identical_spec_runs_compare_clean(self, archives, capsys):
        assert main(["compare", *archives]) == 0
        output = capsys.readouterr().out
        assert "result digest match" in output
        assert "no drift" in output

    def test_different_seed_grades_digest_drift(self, archives, tmp_path, capsys):
        other = tmp_path / "other.lrrun"
        args = ["run", "--scale", "small", "--bucket-count", "64", "--seed", "99"]
        assert main(args + ["--archive-out", str(other)]) == 0
        capsys.readouterr()
        assert main(["compare", archives[0], str(other)]) == 2
        output = capsys.readouterr().out
        assert "result digest DRIFT" in output
        assert "digest drift" in output

    def test_missing_archive_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["compare", str(tmp_path / "no-a.lrrun"), str(tmp_path / "no-b.lrrun")])

    def test_corrupt_archive_is_a_clean_error(self, archives, tmp_path):
        mangled = tmp_path / "mangled.lrrun"
        raw = bytearray(open(archives[0], "rb").read())
        raw[-1] ^= 0xFF
        mangled.write_bytes(bytes(raw))
        with pytest.raises(SystemExit, match="CRC"):
            main(["compare", archives[0], str(mangled)])


class TestServeLiveSeries:
    def test_live_sampler_exports_real_domain_series(self, tmp_path, capsys):
        metrics = tmp_path / "serve-metrics.json"
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "small",
                    "--live-series-window-ms",
                    "5",
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        assert "wrote metrics snapshot" in capsys.readouterr().out
        snapshot = snapshot_from_json(metrics.read_text(encoding="utf-8"))
        live = {
            entry["name"]: entry
            for entry in snapshot["metrics"].values()
            if entry["name"].startswith("series.live_")
        }
        assert set(live) == {
            "series.live_open_streams",
            "series.live_pending_admissions",
            "series.live_chunks_emitted",
        }
        for entry in live.values():
            assert entry["domain"] == "real"  # wall clock, not parity-checked
            assert entry["window_ms"] == 5.0
            assert len(entry["samples"]) > 0


class TestEnvelopesCommand:
    def test_record_then_check_round_trips(self, tmp_path, capsys):
        directory = tmp_path / "envelopes"
        args = ["envelopes", "hotspot_zone_skew", "--dir", str(directory)]
        assert main(args + ["--record"]) == 0
        assert "recorded envelope hotspot_zone_skew" in capsys.readouterr().out
        assert (directory / "hotspot_zone_skew.json").exists()
        assert main(args + ["--check"]) == 0
        assert "envelope OK: hotspot_zone_skew" in capsys.readouterr().out

    def test_check_reports_drift_and_exits_nonzero(self, tmp_path, capsys):
        directory = tmp_path / "envelopes"
        args = ["envelopes", "hotspot_zone_skew", "--dir", str(directory)]
        assert main(args + ["--record"]) == 0
        fixture = directory / "hotspot_zone_skew.json"
        envelope = json.loads(fixture.read_text(encoding="utf-8"))
        envelope["completion"]["completed"] += 1
        fixture.write_text(json.dumps(envelope), encoding="utf-8")
        capsys.readouterr()
        assert main(args + ["--check"]) == 1
        output = capsys.readouterr().out
        assert "ENVELOPE DRIFT: hotspot_zone_skew" in output
        assert "completion.completed" in output

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown scenarios"):
            main(["envelopes", "warp_drive", "--check", "--dir", str(tmp_path)])

    def test_missing_fixture_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["envelopes", "heavy_tail", "--check", "--dir", str(tmp_path)])


class TestRunSeriesWindowFlag:
    def test_series_window_ms_controls_the_cadence(self, tmp_path, capsys):
        coarse = tmp_path / "coarse.json"
        fine = tmp_path / "fine.json"
        base = ["run", "--scale", "small", "--bucket-count", "64"]
        assert main(base + ["--series-window-ms", "9600", "--metrics-out", str(coarse)]) == 0
        assert main(base + ["--series-window-ms", "4800", "--metrics-out", str(fine)]) == 0

        def series_samples(path):
            snapshot = snapshot_from_json(path.read_text(encoding="utf-8"))
            return {
                entry["name"]: len(entry["samples"])
                for entry in snapshot["metrics"].values()
                if entry["type"] == "series"
            }

        coarse_counts = series_samples(coarse)
        fine_counts = series_samples(fine)
        assert coarse_counts["series.queue_depth"] > 0
        # Halving the window doubles the barrier count (same makespan).
        assert fine_counts["series.queue_depth"] >= 2 * coarse_counts["series.queue_depth"]


class TestServeSlaSummary:
    def test_serve_prints_the_overall_sla_line(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scale",
                    "small",
                    "--deadline-mix",
                    "interactive=0.5,batch=0.5",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "SLA overall:" in output
        assert "first-result" in output and "completion" in output
