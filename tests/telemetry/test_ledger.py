"""The per-query cost ledger: schema, attribution and the parity matrix.

The ledger is the PR's determinism-critical artifact: assembled from
batch records after a run, it must be bit-identical across the serial
engine and both execution backends at any fixed worker count (stealing
off), identical between a crash-injected recovery run and its clean
twin, and building it must never perturb the ``result_digest``.  Unit
tests drive :func:`build_run_ledger` with lightweight record stand-ins
(the same dual-shape rule as the span builder); the parity matrix runs
the real engines end to end.
"""

import json
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import FaultPlan, ReliabilityConfig
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.telemetry.ledger import (
    LEDGER_VERSION,
    build_run_ledger,
    diff_ledgers,
    ledger_digest,
    ledger_entries,
)
from repro.workload.generator import TraceConfig, TraceGenerator

BUCKETS = 64
WORKER_COUNTS = (1, 2, 4)
WINDOW_BUCKET_READS = 4.0


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(bucket_count=BUCKETS)


@pytest.fixture(scope="module")
def simulator(sim_config):
    return Simulator(sim_config)


@pytest.fixture(scope="module")
def timed_queries():
    config = TraceConfig(query_count=40, bucket_count=BUCKETS, seed=21)
    return tuple(TraceGenerator(config).generate().with_saturation(3.0).queries)


@pytest.fixture(scope="module")
def serial_result(simulator, timed_queries):
    return simulator.execute(timed_queries, RunSpec())


@pytest.fixture(scope="module")
def backend_results(simulator, timed_queries):
    results = {}
    for backend in ("virtual", "process"):
        for workers in WORKER_COUNTS:
            spec = RunSpec(backend=backend, workers=workers, enable_stealing=False)
            results[(backend, workers)] = simulator.execute(timed_queries, spec)
    return results


def service(
    bucket=3,
    start=0.0,
    finish=10.0,
    io_ms=6.0,
    match_ms=4.0,
    queries=(1,),
    objects=(5,),
):
    """A parallel-record-shaped stand-in (io/match carried directly)."""
    return SimpleNamespace(
        bucket_index=bucket,
        started_at_ms=start,
        finished_at_ms=finish,
        io_ms=io_ms,
        match_ms=match_ms,
        queries_served=tuple(queries),
        objects_served=tuple(objects),
    )


def instant(time_ms, query_id, outcome, attempt=0):
    return SimpleNamespace(
        time_ms=time_ms, query_id=query_id, outcome=outcome, attempt=attempt
    )


class TestLedgerSchema:
    def test_single_service_decomposition(self):
        ledger = build_run_ledger(
            [service(start=4.0, finish=10.0, io_ms=6.0, match_ms=0.0)],
            arrivals_ms={1: 1.0},
        )
        assert ledger["version"] == LEDGER_VERSION
        (entry,) = ledger["queries"]
        assert entry["query_id"] == 1
        assert entry["arrival_ms"] == 1.0
        # No gate: hand-off is the arrival, queue wait runs to the first
        # service start.
        assert entry["submit_ms"] == 1.0
        assert entry["admission_wait_ms"] == 0.0
        assert entry["queue_wait_ms"] == 3.0
        assert entry["makespan_ms"] == 9.0
        assert entry["service_ms"] == 6.0
        assert entry["io_ms"] == 6.0
        assert entry["io_services"] == 1 and entry["cache_hit_services"] == 0
        assert entry["buckets"] == [
            {"bucket": 3, "shared_by": 1, "service_ms": 6.0, "io_ms": 6.0, "objects": 5}
        ]

    def test_sharing_attribution_splits_costs(self):
        batch = service(
            start=0.0, finish=12.0, io_ms=9.0, match_ms=3.0, queries=(1, 2, 3), objects=(4, 5, 6)
        )
        ledger = build_run_ledger([batch], arrivals_ms={1: 0.0, 2: 0.0, 3: 0.0})
        entries = ledger_entries(ledger)
        for query_id in (1, 2, 3):
            entry = entries[query_id]
            assert entry["service_ms"] == 12.0
            assert entry["attributed_service_ms"] == pytest.approx(4.0)
            assert entry["attributed_io_ms"] == pytest.approx(3.0)
            assert entry["buckets"][0]["shared_by"] == 3
        assert entries[2]["buckets"][0]["objects"] == 5

    def test_cache_hit_vs_io_split(self):
        ledger = build_run_ledger(
            [
                service(bucket=1, start=0.0, finish=5.0, io_ms=3.0, match_ms=2.0),
                service(bucket=1, start=5.0, finish=7.0, io_ms=0.0, match_ms=2.0),
            ],
            arrivals_ms={1: 0.0},
        )
        (entry,) = ledger["queries"]
        assert entry["services"] == 2
        assert entry["io_services"] == 1
        assert entry["cache_hit_services"] == 1

    def test_admission_story_from_gate_instants(self):
        records = [
            instant(0.0, 7, "defer", attempt=0),
            instant(5.0, 7, "defer", attempt=1),
            instant(10.0, 7, "admit", attempt=2),
        ]
        ledger = build_run_ledger(
            [service(start=14.0, finish=20.0, queries=(7,), objects=(1,))],
            admission_records=records,
        )
        (entry,) = ledger["queries"]
        # Arrival falls back to the first gate instant; submit is the
        # admit instant; the defer rounds are the admission wait.
        assert entry["arrival_ms"] == 0.0
        assert entry["submit_ms"] == 10.0
        assert entry["admission_wait_ms"] == 10.0
        assert entry["defers"] == 2
        assert entry["queue_wait_ms"] == 4.0
        assert entry["makespan_ms"] == 20.0

    def test_steal_migration_wait_attribution(self):
        steal = SimpleNamespace(bucket_index=3, time_ms=6.0, victim_id=0, thief_id=1, entry_count=2)
        ledger = build_run_ledger(
            [service(bucket=3, start=9.0, finish=12.0)],
            steal_records=[steal],
            arrivals_ms={1: 2.0},
        )
        (entry,) = ledger["queries"]
        assert entry["steal_migrations"] == 1
        assert entry["steal_wait_ms"] == pytest.approx(3.0)
        # A steal before the query arrived attributes nothing.
        early = build_run_ledger(
            [service(bucket=3, start=9.0, finish=12.0)],
            steal_records=[SimpleNamespace(bucket_index=3, time_ms=1.0)],
            arrivals_ms={1: 2.0},
        )
        assert early["queries"][0]["steal_migrations"] == 0

    def test_serial_batch_results_normalise_via_join(self):
        batch = SimpleNamespace(
            work_item=SimpleNamespace(bucket_index=9),
            join=SimpleNamespace(io_cost_ms=2.0, match_cost_ms=1.0),
            started_at_ms=0.0,
            finished_at_ms=3.0,
            queries_served=(4,),
            objects_served=(8,),
        )
        (entry,) = build_run_ledger([batch])["queries"]
        assert entry["io_ms"] == 2.0 and entry["match_ms"] == 1.0
        assert entry["buckets"][0]["bucket"] == 9

    def test_ledger_json_round_trips(self):
        ledger = build_run_ledger(
            [service(queries=(1, 2), objects=(3, 4))], arrivals_ms={1: 0.0, 2: 0.0}
        )
        assert json.loads(json.dumps(ledger)) == ledger
        assert ledger_digest(json.loads(json.dumps(ledger))) == ledger_digest(ledger)


class TestDiffLedgers:
    def test_identical_ledgers_diff_clean(self):
        ledger = build_run_ledger([service()], arrivals_ms={1: 0.0})
        assert diff_ledgers(ledger, json.loads(json.dumps(ledger))) == []

    def test_changed_field_is_reported(self):
        a = build_run_ledger([service(finish=10.0)], arrivals_ms={1: 0.0})
        b = build_run_ledger([service(finish=12.0)], arrivals_ms={1: 0.0})
        (row,) = [r for r in diff_ledgers(a, b) if r[0] == "query 1"]
        assert row[1] == "changed"
        assert "makespan_ms" in row[2]

    def test_only_one_side(self):
        a = build_run_ledger([service(queries=(1,), objects=(2,))], arrivals_ms={1: 0.0})
        b = build_run_ledger([service(queries=(2,), objects=(2,))], arrivals_ms={2: 0.0})
        statuses = {key: status for key, status, _ in diff_ledgers(a, b)}
        assert statuses == {"query 1": "only-a", "query 2": "only-b"}


services_strategy = st.lists(
    st.builds(
        service,
        bucket=st.integers(min_value=0, max_value=7),
        start=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        io_ms=st.sampled_from([0.0, 3.0]),
        queries=st.lists(
            st.integers(min_value=1, max_value=9), min_size=1, max_size=3, unique=True
        ).map(tuple),
    ).map(
        lambda s: service(
            bucket=s.bucket_index,
            start=s.started_at_ms,
            finish=s.started_at_ms + 5.0,
            io_ms=s.io_ms,
            match_ms=2.0,
            queries=s.queries_served,
            objects=tuple(range(1, len(s.queries_served) + 1)),
        )
    ),
    min_size=0,
    max_size=12,
)


class TestMergeCommutativity:
    @settings(max_examples=60)
    @given(records=services_strategy, seed=st.integers(min_value=0, max_value=2**16))
    def test_ledger_is_order_insensitive(self, records, seed):
        import random

        shuffled = list(records)
        random.Random(seed).shuffle(shuffled)
        baseline = build_run_ledger(records)
        assert build_run_ledger(shuffled) == baseline
        assert ledger_digest(build_run_ledger(shuffled)) == ledger_digest(baseline)

    @settings(max_examples=60)
    @given(records=services_strategy, cut=st.integers(min_value=0, max_value=12))
    def test_fragment_concatenation_commutes(self, records, cut):
        """Per-worker fragments merge by concatenation in either order."""
        split = min(cut, len(records))
        left, right = records[:split], records[split:]
        assert build_run_ledger(left + right) == build_run_ledger(right + left)


class TestLedgerParityMatrix:
    def test_serial_matches_single_worker_backends(self, serial_result, backend_results):
        want = ledger_digest(serial_result.ledger)
        assert ledger_digest(backend_results[("virtual", 1)].ledger) == want
        assert ledger_digest(backend_results[("process", 1)].ledger) == want

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_virtual_matches_process(self, backend_results, workers):
        virtual = backend_results[("virtual", workers)].ledger
        process = backend_results[("process", workers)].ledger
        assert ledger_digest(virtual) == ledger_digest(process)
        assert virtual == process

    def test_every_completed_query_has_an_entry(self, serial_result):
        entries = ledger_entries(serial_result.ledger)
        assert len(entries) == serial_result.completed_queries
        for entry in entries.values():
            assert entry["makespan_ms"] >= 0.0
            assert entry["attributed_service_ms"] <= entry["service_ms"] + 1e-9
            assert entry["services"] == len(entry["buckets"])
            # Stealing is off everywhere in this matrix.
            assert entry["steal_migrations"] == 0


class TestCrashRecoveryParity:
    @pytest.fixture(scope="class")
    def reliability_pair(self, simulator, timed_queries, sim_config):
        quantum_ms = sim_config.cost.tb_ms * WINDOW_BUCKET_READS

        def run(faults):
            return simulator.execute(
                timed_queries,
                RunSpec(
                    workers=2,
                    enable_stealing=False,
                    reliability=ReliabilityConfig(
                        cadence="windows:1",
                        faults=faults,
                        window_quantum_ms=quantum_ms,
                    ),
                ),
            )

        return run(None), run(FaultPlan.parse("1@1"))

    def test_crash_ledger_matches_clean(self, reliability_pair):
        clean, crashed = reliability_pair
        assert crashed.reliability.crashes_injected >= 1
        assert crashed.result_digest == clean.result_digest
        assert ledger_digest(crashed.ledger) == ledger_digest(clean.ledger)
        assert crashed.ledger == clean.ledger


class TestZeroPerturbation:
    def test_digest_unchanged_with_ledger_off(self, simulator, timed_queries, serial_result):
        off = simulator.execute(timed_queries, RunSpec(telemetry=False))
        assert off.ledger is None
        assert serial_result.ledger is not None
        assert off.result_digest == serial_result.result_digest

    def test_digest_unchanged_with_archive_on(
        self, simulator, timed_queries, serial_result, tmp_path
    ):
        archived = simulator.execute(
            timed_queries, RunSpec(archive_out=str(tmp_path / "run.lrrun"))
        )
        assert archived.result_digest == serial_result.result_digest
        assert (tmp_path / "run.lrrun").exists()

    def test_archive_written_even_with_telemetry_off(
        self, simulator, timed_queries, serial_result, tmp_path
    ):
        path = tmp_path / "off.lrrun"
        off = simulator.execute(
            timed_queries, RunSpec(telemetry=False, archive_out=str(path))
        )
        assert off.ledger is None
        assert off.result_digest == serial_result.result_digest
        assert path.exists()
