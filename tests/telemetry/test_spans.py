"""Chrome-trace timeline assembly from run records.

Spans are derived after a run from records the engines already emit, so
these tests drive :func:`build_chrome_trace` with lightweight stand-ins
shaped like the real records (parallel ``BatchRecord``, serial
``BatchResult``, steal records, the reliability report) and check the
emitted events are well-formed per :func:`validate_chrome_trace`.
"""

import json
from types import SimpleNamespace

import pytest

from repro.telemetry.spans import (
    TRACE_PID,
    build_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def parallel_record(worker_id=1, bucket_index=3, start=0.0, finish=2.5):
    return SimpleNamespace(
        worker_id=worker_id,
        bucket_index=bucket_index,
        started_at_ms=start,
        finished_at_ms=finish,
        queries_served=(11, 12),
        objects_served=(7,),
    )


def serial_record(bucket_index=5, start=1.0, finish=4.0):
    """Shaped like the serial engine's BatchResult: bucket index lives on
    the work item and there is no worker id."""
    return SimpleNamespace(
        work_item=SimpleNamespace(bucket_index=bucket_index),
        started_at_ms=start,
        finished_at_ms=finish,
        queries_served=(3,),
    )


def steal_record(victim=0, thief=2, bucket=9, time_ms=5.0, entries=4):
    return SimpleNamespace(
        victim_id=victim,
        thief_id=thief,
        bucket_index=bucket,
        time_ms=time_ms,
        entry_count=entries,
    )


def events_by_phase(trace, phase):
    return [event for event in trace["traceEvents"] if event["ph"] == phase]


class TestServiceEvents:
    def test_parallel_record_becomes_complete_event(self):
        trace = build_chrome_trace([parallel_record()], label="demo", backend="virtual")
        validate_chrome_trace(trace)
        (event,) = events_by_phase(trace, "X")
        assert event["name"] == "bucket 3"
        assert event["tid"] == 1 and event["pid"] == TRACE_PID
        # Virtual milliseconds export as trace microseconds.
        assert event["ts"] == 0.0 and event["dur"] == 2500.0
        assert event["args"]["queries_served"] == [11, 12]
        assert event["args"]["objects_served"] == [7]

    def test_serial_record_normalises_via_work_item(self):
        trace = build_chrome_trace([serial_record()])
        validate_chrome_trace(trace)
        (event,) = events_by_phase(trace, "X")
        assert event["name"] == "bucket 5"
        assert event["tid"] == 0  # serial engine: single implicit shard
        assert event["ts"] == 1000.0 and event["dur"] == 3000.0

    def test_metadata_names_every_worker_track(self):
        trace = build_chrome_trace(
            [parallel_record(worker_id=0), parallel_record(worker_id=3)],
            steal_records=[steal_record(victim=1, thief=2)],
            label="p",
        )
        meta = events_by_phase(trace, "M")
        names = {event["args"]["name"] for event in meta}
        # Steal participants get tracks even if they serviced nothing.
        assert {"shard-0", "shard-1", "shard-2", "shard-3"} <= names
        assert any(name.startswith("liferaft run (p)") for name in names)

    def test_other_data_summarises_the_run(self):
        trace = build_chrome_trace(
            [parallel_record()],
            steal_records=[steal_record()],
            window_boundaries_ms=[10.0, 20.0],
            label="lbl",
            backend="process",
        )
        other = trace["otherData"]
        assert other["clock"] == "virtual"
        assert other["backend"] == "process"
        assert other["services"] == 1
        assert other["steals"] == 1
        assert other["windows"] == 2


class TestInstantEvents:
    def test_steals_and_windows(self):
        trace = build_chrome_trace(
            [parallel_record()],
            steal_records=[steal_record(thief=2, bucket=9, time_ms=5.0)],
            window_boundaries_ms=[10.0],
        )
        validate_chrome_trace(trace)
        instants = {event["name"]: event for event in events_by_phase(trace, "i")}
        steal = instants["steal bucket 9"]
        assert steal["tid"] == 2 and steal["ts"] == 5000.0
        assert steal["args"]["victim"] == 0 and steal["args"]["entries"] == 4
        window = instants["window 0"]
        assert window["s"] == "p"  # process-scoped barrier
        assert window["ts"] == 10000.0

    def test_reliability_marks(self):
        reliability = SimpleNamespace(
            checkpoint_marks=[
                SimpleNamespace(
                    worker_id=1, window_index=0, clock_ms=12.0, seq=3, byte_size=640
                )
            ],
            recoveries=[
                SimpleNamespace(
                    worker_id=1, window_index=1, checkpoint_window=0, services_replayed=2
                )
            ],
            scale_events=[
                SimpleNamespace(
                    worker_id=2,
                    window_index=1,
                    kind="up",
                    buckets_migrated=4,
                    entries_migrated=9,
                )
            ],
        )
        trace = build_chrome_trace(
            [parallel_record()],
            window_boundaries_ms=[10.0, 20.0],
            reliability=reliability,
        )
        validate_chrome_trace(trace)
        instants = {event["name"]: event for event in events_by_phase(trace, "i")}
        checkpoint = instants["checkpoint w0"]
        assert checkpoint["ts"] == 12000.0 and checkpoint["args"]["bytes"] == 640
        recover = instants["recover shard 1"]
        # Recovery lands on its window's barrier time.
        assert recover["ts"] == 20000.0
        assert recover["args"]["services_replayed"] == 2
        scale = instants["scale-up shard 2"]
        assert scale["args"]["buckets_migrated"] == 4

    def test_empty_run_is_still_valid(self):
        trace = build_chrome_trace([])
        validate_chrome_trace(trace)
        assert events_by_phase(trace, "X") == []


def admission_record(time_ms=0.5, query_id=11, outcome="admit", attempt=0):
    return SimpleNamespace(
        time_ms=time_ms, query_id=query_id, outcome=outcome, attempt=attempt
    )


class TestQueryFlows:
    def test_flows_off_by_default(self):
        trace = build_chrome_trace([parallel_record()])
        assert trace["otherData"]["query_flows"] is False
        for phase in ("s", "t", "f"):
            assert events_by_phase(trace, phase) == []

    def test_chunk_chain_stitches_start_step_finish(self):
        records = [
            parallel_record(worker_id=0, bucket_index=3, start=0.0, finish=2.0),
            parallel_record(worker_id=1, bucket_index=7, start=2.0, finish=5.0),
        ]
        trace = build_chrome_trace(records, include_query_flows=True)
        validate_chrome_trace(trace)
        starts = events_by_phase(trace, "s")
        steps = events_by_phase(trace, "t")
        finishes = events_by_phase(trace, "f")
        # Both records serve queries 11 and 12, so two flows emerge.
        assert {event["id"] for event in starts} == {11, 12}
        flow_11 = [e for e in starts + steps + finishes if e["id"] == 11]
        assert [e["ph"] for e in flow_11] == ["s", "t", "f"]
        # With no admission gate the chain starts at the first chunk.
        assert flow_11[0]["ts"] == 0.0 and flow_11[0]["tid"] == 0
        assert flow_11[1]["ts"] == 2000.0 and flow_11[1]["tid"] == 1
        assert flow_11[2]["ts"] == 5000.0 and flow_11[2]["bp"] == "e"

    def test_admitted_query_starts_on_the_frontend_track(self):
        trace = build_chrome_trace(
            [parallel_record(worker_id=2, start=1.0, finish=2.0)],
            admission_records=[admission_record(time_ms=0.25, query_id=11)],
            include_query_flows=True,
        )
        validate_chrome_trace(trace)
        (start,) = [e for e in events_by_phase(trace, "s") if e["id"] == 11]
        # The causal chain begins at the gate's admit instant, on the
        # dedicated frontend track above the worker lanes.
        assert start["ts"] == 250.0
        assert start["tid"] == 3  # max(worker_ids) + 1
        # The first chunk is then a step, not the start.
        steps = [e for e in events_by_phase(trace, "t") if e["id"] == 11]
        assert steps and steps[0]["ts"] == 1000.0 and steps[0]["tid"] == 2

    def test_admission_instants_and_frontend_metadata(self):
        trace = build_chrome_trace(
            [parallel_record(worker_id=0)],
            admission_records=[
                admission_record(time_ms=0.1, query_id=11, outcome="defer", attempt=0),
                admission_record(time_ms=0.4, query_id=11, outcome="admit", attempt=1),
                admission_record(time_ms=0.2, query_id=99, outcome="reject"),
            ],
        )
        validate_chrome_trace(trace)
        assert trace["otherData"]["admissions"] == 3
        instants = {
            event["name"]: event
            for event in events_by_phase(trace, "i")
            if event.get("cat") == "admission"
        }
        assert set(instants) == {"defer q11", "admit q11", "reject q99"}
        assert instants["admit q11"]["args"]["attempt"] == 1
        meta_names = {event["args"]["name"] for event in events_by_phase(trace, "M")}
        assert "frontend" in meta_names

    def test_defer_chain_stitches_every_backpressure_round(self):
        trace = build_chrome_trace(
            [parallel_record(worker_id=0, start=2.0, finish=3.0)],
            admission_records=[
                admission_record(time_ms=0.1, query_id=11, outcome="defer", attempt=0),
                admission_record(time_ms=0.6, query_id=11, outcome="defer", attempt=1),
                admission_record(time_ms=1.1, query_id=11, outcome="admit", attempt=2),
            ],
            include_query_flows=True,
        )
        validate_chrome_trace(trace)
        (start,) = [e for e in events_by_phase(trace, "s") if e["id"] == 11]
        # The flow starts at the FIRST gate decision (the first defer),
        # on the frontend track (max worker id + 1).
        assert start["ts"] == 100.0 and start["tid"] == 1
        steps = [e for e in events_by_phase(trace, "t") if e["id"] == 11]
        # Every later backpressure round — the second defer AND the final
        # admit — is a step on the frontend track before the chunk leg.
        assert [(e["ts"], e["tid"]) for e in steps[:2]] == [(600.0, 1), (1100.0, 1)]
        assert (steps[2]["ts"], steps[2]["tid"]) == (2000.0, 0)

    def test_flow_events_validate(self):
        base = {"name": "query 1", "ph": "s", "pid": 1, "tid": 0, "cat": "query"}
        with pytest.raises(ValueError, match="flow events need ts and id"):
            validate_chrome_trace({"traceEvents": [dict(base, ts=1.0)]})
        with pytest.raises(ValueError, match="flow events need ts and id"):
            validate_chrome_trace({"traceEvents": [dict(base, id=1)]})
        validate_chrome_trace({"traceEvents": [dict(base, ts=1.0, id=1)]})


class TestValidation:
    def test_rejects_non_trace_objects(self):
        with pytest.raises(ValueError, match="missing 'traceEvents'"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="must be a list"):
            validate_chrome_trace({"traceEvents": {}})
        with pytest.raises(ValueError, match="is not an object"):
            validate_chrome_trace({"traceEvents": ["nope"]})

    def test_rejects_missing_required_keys(self):
        with pytest.raises(ValueError, match="missing required key 'tid'"):
            validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "i", "pid": 1}]})

    def test_rejects_malformed_complete_events(self):
        base = {"name": "x", "ph": "X", "pid": 1, "tid": 0}
        with pytest.raises(ValueError, match="need ts and dur"):
            validate_chrome_trace({"traceEvents": [dict(base, ts=1.0)]})
        with pytest.raises(ValueError, match="negative duration"):
            validate_chrome_trace({"traceEvents": [dict(base, ts=1.0, dur=-2.0)]})

    def test_rejects_unknown_phase(self):
        event = {"name": "x", "ph": "B", "pid": 1, "tid": 0, "ts": 0.0}
        with pytest.raises(ValueError, match="unexpected phase"):
            validate_chrome_trace({"traceEvents": [event]})


class TestWriter:
    def test_writes_loadable_json_atomically(self, tmp_path):
        path = tmp_path / "trace.json"
        trace = build_chrome_trace([parallel_record()], label="written")
        write_chrome_trace(str(path), trace)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        validate_chrome_trace(loaded)
        assert loaded == json.loads(json.dumps(trace))
        assert not (tmp_path / "trace.json.tmp").exists()
