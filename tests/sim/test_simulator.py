"""Tests for the trace-replay simulator."""

import pytest

from repro.sim.runspec import RunSpec
from repro.sim.simulator import (
    POLICY_NAMES,
    SimulationConfig,
    Simulator,
    make_policy,
    run_policy_comparison,
)
from repro.workload.generator import TraceConfig, TraceGenerator


@pytest.fixture(scope="module")
def small_trace():
    return TraceGenerator(TraceConfig(query_count=60, bucket_count=128, seed=17)).generate()


@pytest.fixture(scope="module")
def simulator():
    return Simulator(SimulationConfig(bucket_count=128))


class TestMakePolicy:
    def test_all_policy_names_construct(self):
        for name in POLICY_NAMES:
            assert make_policy(name) is not None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("fifo")

    def test_liferaft_alpha_passed_through(self):
        assert make_policy("liferaft", alpha=0.75).alpha == 0.75


class TestSimulationConfig:
    def test_bucket_count_validated(self):
        with pytest.raises(ValueError):
            SimulationConfig(bucket_count=0)


class TestSimulatorRuns:
    def test_every_query_completes(self, small_trace, simulator):
        result = simulator.execute(
            small_trace.with_saturation(0.5).queries, RunSpec(alpha=0.25)
        )
        assert result.submitted_queries == len(small_trace)
        assert result.completed_queries == len(small_trace)
        assert result.response_stats.count == len(small_trace)
        assert result.throughput_qps > 0
        assert result.makespan_s > 0
        assert result.busy_time_s > 0

    def test_runs_are_deterministic(self, small_trace, simulator):
        queries = small_trace.with_saturation(0.5).queries
        first = simulator.execute(queries, RunSpec(alpha=0.5))
        second = simulator.execute(queries, RunSpec(alpha=0.5))
        assert first.throughput_qps == pytest.approx(second.throughput_qps)
        assert first.avg_response_time_s == pytest.approx(second.avg_response_time_s)
        assert first.bucket_reads == second.bucket_reads

    def test_sharing_reads_fewer_buckets_than_noshare(self, small_trace, simulator):
        queries = small_trace.with_saturation(0.5).queries
        shared = simulator.execute(queries, RunSpec(alpha=0.0))
        unshared = simulator.execute(queries, RunSpec(policy="noshare"))
        assert shared.bucket_reads < unshared.bucket_reads
        assert shared.busy_time_s < unshared.busy_time_s
        assert shared.throughput_qps >= unshared.throughput_qps

    def test_policy_instance_can_be_passed_directly(self, small_trace, simulator):
        policy = make_policy("round_robin")
        result = simulator.execute(
            small_trace.with_saturation(0.5).queries, RunSpec(policy=policy)
        )
        assert result.policy_name == "round_robin"
        assert result.completed_queries == len(small_trace)

    def test_higher_saturation_never_reduces_busy_time_accuracy(self, small_trace, simulator):
        slow = simulator.execute(small_trace.with_saturation(0.05).queries, RunSpec(alpha=0.0))
        fast = simulator.execute(small_trace.with_saturation(5.0).queries, RunSpec(alpha=0.0))
        # Same total work, but the slow replay stretches over a longer makespan.
        assert slow.makespan_s > fast.makespan_s
        assert slow.completed_queries == fast.completed_queries

    def test_alpha_sweep_returns_one_result_per_alpha(self, small_trace, simulator):
        results = simulator.run_alpha_sweep(
            small_trace.with_saturation(0.5).queries, alphas=(0.0, 1.0)
        )
        assert [r.alpha for r in results] == [0.0, 1.0]

    def test_result_row_flattening(self, small_trace, simulator):
        result = simulator.execute(small_trace.with_saturation(0.5).queries, RunSpec(alpha=0.0))
        row = result.to_row()
        assert row["policy"].startswith("liferaft")
        assert row["completed"] == len(small_trace)


class TestPolicyComparison:
    def test_comparison_includes_requested_policies(self, small_trace):
        results = run_policy_comparison(
            small_trace.with_saturation(1.0).queries,
            config=SimulationConfig(bucket_count=128),
            alphas=(1.0, 0.0),
            include_baselines=("noshare", "round_robin"),
        )
        assert list(results) == ["NoShare", "alpha=1", "alpha=0", "RR"]
        assert all(r.completed_queries == len(small_trace) for r in results.values())

    def test_headline_claim_shared_beats_noshare(self, small_trace):
        results = run_policy_comparison(
            small_trace.with_saturation(1.0).queries,
            config=SimulationConfig(bucket_count=128),
            alphas=(0.0,),
            include_baselines=("noshare",),
        )
        assert results["alpha=0"].throughput_qps > results["NoShare"].throughput_qps
        assert (
            results["alpha=0"].avg_response_time_s < results["NoShare"].avg_response_time_s
        )
