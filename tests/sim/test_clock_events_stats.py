"""Tests for the simulation kernel helpers: clock, events and statistics."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventKind, EventQueue, WorkerEventLog
from repro.sim.stats import normalize_to, summarize_response_times, throughput_qps


class TestVirtualClock:
    def test_advance_and_convert(self):
        clock = VirtualClock()
        clock.advance(1_500.0)
        assert clock.now_ms == 1_500.0
        assert clock.now_s == 1.5

    def test_advance_to_never_goes_backwards(self):
        clock = VirtualClock(start_ms=100.0)
        clock.advance_to(50.0)
        assert clock.now_ms == 100.0
        clock.advance_to(200.0)
        assert clock.now_ms == 200.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ms=-1.0)
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_repr_mentions_time(self):
        assert "now_ms" in repr(VirtualClock())


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(Event(30.0, EventKind.SERVICE_COMPLETE))
        queue.push(Event(10.0, EventKind.QUERY_ARRIVAL, payload="q1"))
        queue.push(Event(20.0, EventKind.TRANSFER_COMPLETE))
        assert queue.pop().payload == "q1"
        assert queue.pop().kind is EventKind.TRANSFER_COMPLETE
        assert len(queue) == 1

    def test_fifo_within_same_timestamp(self):
        queue = EventQueue()
        queue.push(Event(5.0, EventKind.CONTROL, payload="first"))
        queue.push(Event(5.0, EventKind.CONTROL, payload="second"))
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_peek_and_next_time(self):
        queue = EventQueue()
        assert queue.peek() is None
        assert queue.next_time_ms() is None
        queue.push(Event(42.0, EventKind.CONTROL))
        assert queue.peek().time_ms == 42.0
        assert queue.next_time_ms() == 42.0
        assert len(queue) == 1

    def test_pop_until_drains_only_due_events(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0, 10.0):
            queue.push(Event(t, EventKind.CONTROL))
        due = list(queue.pop_until(3.0))
        assert [e.time_ms for e in due] == [1.0, 2.0, 3.0]
        assert len(queue) == 1

    def test_pop_empty_raises_and_negative_time_rejected(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(ValueError):
            Event(-1.0, EventKind.CONTROL)

    def test_fifo_preserved_through_interleaved_pushes(self):
        """Ties stay FIFO even when pushed around other timestamps."""
        queue = EventQueue()
        queue.push(Event(5.0, EventKind.CONTROL, payload="a"))
        queue.push(Event(1.0, EventKind.CONTROL, payload="early"))
        queue.push(Event(5.0, EventKind.CONTROL, payload="b"))
        queue.push(Event(9.0, EventKind.CONTROL, payload="late"))
        queue.push(Event(5.0, EventKind.CONTROL, payload="c"))
        drained = [queue.pop().payload for _ in range(len(queue))]
        assert drained == ["early", "a", "b", "c", "late"]


class TestControlEventOrdering:
    """CONTROL events are the serving front-end's backpressure retries;
    their interleaving with fresh arrivals must be deterministic: strict
    time order first, push order (FIFO) within a timestamp, with the
    event kind playing no role in the ordering."""

    def test_control_retry_racing_a_fresh_arrival_is_fifo(self):
        queue = EventQueue()
        queue.push(Event(10.0, EventKind.QUERY_ARRIVAL, payload="fresh"))
        queue.push(Event(10.0, EventKind.CONTROL, payload="retry"))
        assert queue.pop().payload == "fresh"
        assert queue.pop().payload == "retry"

    def test_control_pushed_first_wins_the_tie(self):
        queue = EventQueue()
        queue.push(Event(10.0, EventKind.CONTROL, payload="retry"))
        queue.push(Event(10.0, EventKind.QUERY_ARRIVAL, payload="fresh"))
        assert queue.pop().payload == "retry"
        assert queue.pop().payload == "fresh"

    def test_kinds_do_not_reorder_within_a_timestamp(self):
        queue = EventQueue()
        kinds = (
            EventKind.SERVICE_COMPLETE,
            EventKind.CONTROL,
            EventKind.QUERY_ARRIVAL,
            EventKind.WORK_STOLEN,
            EventKind.CONTROL,
        )
        for position, kind in enumerate(kinds):
            queue.push(Event(7.0, kind, payload=position))
        assert [queue.pop().payload for _ in range(len(queue))] == [0, 1, 2, 3, 4]

    def test_defer_retry_cycle_is_deterministic(self):
        """The front-end's defer loop — pop an arrival, re-enqueue it as a
        CONTROL retry delta later — always drains in a reproducible global
        order, even when retries land between future arrivals."""
        queue = EventQueue()
        for arrival_ms, name in ((0.0, "a"), (4.0, "b"), (8.0, "c")):
            queue.push(Event(arrival_ms, EventKind.QUERY_ARRIVAL, payload=name))
        drained = []
        retried = set()
        while queue:
            event = queue.pop()
            if event.kind is EventKind.QUERY_ARRIVAL and event.payload not in retried:
                retried.add(event.payload)
                queue.push(Event(event.time_ms + 6.0, EventKind.CONTROL, payload=event.payload))
                continue
            drained.append((event.time_ms, event.payload))
        assert drained == [(6.0, "a"), (10.0, "b"), (14.0, "c")]


class TestWorkerEventLog:
    def test_streams_are_per_worker_and_append_ordered(self):
        log = WorkerEventLog()
        log.record(1, Event(10.0, EventKind.QUERY_ARRIVAL, payload="q1"))
        log.record(0, Event(5.0, EventKind.QUERY_ARRIVAL, payload="q0"))
        log.record(1, Event(20.0, EventKind.SERVICE_COMPLETE, payload="s1"))
        assert log.worker_ids() == [0, 1]
        assert [e.payload for e in log.stream(1)] == ["q1", "s1"]
        assert [e.payload for e in log.stream(0)] == ["q0"]
        assert log.stream(7) == []
        assert len(log) == 3

    def test_merged_timeline_is_globally_time_ordered(self):
        log = WorkerEventLog()
        log.record(2, Event(30.0, EventKind.SERVICE_COMPLETE))
        log.record(0, Event(10.0, EventKind.QUERY_ARRIVAL))
        log.record(1, Event(20.0, EventKind.QUERY_ARRIVAL))
        log.record(0, Event(25.0, EventKind.SERVICE_COMPLETE))
        merged = log.merged()
        times = [event.time_ms for _worker, event in merged]
        assert times == sorted(times)
        assert [worker for worker, _event in merged] == [0, 1, 0, 2]

    def test_merged_ties_break_by_record_order(self):
        """Events at the same timestamp keep their global record order,
        regardless of which worker stream they belong to."""
        log = WorkerEventLog()
        log.record(3, Event(5.0, EventKind.CONTROL, payload="first"))
        log.record(0, Event(5.0, EventKind.CONTROL, payload="second"))
        log.record(3, Event(5.0, EventKind.CONTROL, payload="third"))
        assert [event.payload for _worker, event in log.merged()] == [
            "first",
            "second",
            "third",
        ]

    def test_negative_time_events_rejected(self):
        log = WorkerEventLog()
        with pytest.raises(ValueError, match="before time zero"):
            log.record(0, Event(-0.5, EventKind.QUERY_ARRIVAL))
        assert len(log) == 0

    def test_counts_by_kind(self):
        log = WorkerEventLog()
        log.record(0, Event(1.0, EventKind.QUERY_ARRIVAL))
        log.record(1, Event(2.0, EventKind.QUERY_ARRIVAL))
        log.record(0, Event(3.0, EventKind.SERVICE_COMPLETE))
        counts = log.counts_by_kind()
        assert counts[EventKind.QUERY_ARRIVAL] == 2
        assert counts[EventKind.SERVICE_COMPLETE] == 1
        assert EventKind.WORK_STOLEN not in counts


class TestResponseTimeStats:
    def test_summary_of_known_values(self):
        stats = summarize_response_times([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean_s == pytest.approx(2.5)
        assert stats.median_s == pytest.approx(2.5)
        assert stats.minimum_s == 1.0
        assert stats.maximum_s == 4.0
        assert stats.std_s == pytest.approx(1.118, rel=1e-3)
        assert stats.coefficient_of_variance == pytest.approx(1.118 / 2.5, rel=1e-3)
        assert stats.p95_s <= stats.maximum_s

    def test_empty_and_single_value(self):
        empty = summarize_response_times([])
        assert empty.count == 0 and empty.mean_s == 0.0
        assert empty.coefficient_of_variance == 0.0
        single = summarize_response_times([5.0])
        assert single.median_s == 5.0 and single.p95_s == 5.0 and single.std_s == 0.0

    def test_throughput_and_normalisation_helpers(self):
        assert throughput_qps(10, 20.0) == 0.5
        assert throughput_qps(10, 0.0) == 0.0
        assert normalize_to([1.0, 2.0], 2.0) == [0.5, 1.0]
        assert normalize_to([1.0], 0.0) == [0.0]
