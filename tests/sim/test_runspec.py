"""Tests for the RunSpec API: dispatch, defaults, and validation."""

import pytest

from repro.sim.runspec import DEFAULT_STORE, RunSpec
from repro.sim.simulator import (
    VIRTUAL_CLOCK_PARITY_FIELDS,
    SimulationConfig,
    Simulator,
)
from repro.workload.generator import TraceConfig, TraceGenerator


@pytest.fixture(scope="module")
def small_trace():
    return TraceGenerator(TraceConfig(query_count=60, bucket_count=128, seed=17)).generate()


@pytest.fixture(scope="module")
def simulator():
    return Simulator(SimulationConfig(bucket_count=128))


class TestRunSpec:
    def test_defaults_describe_a_serial_run(self):
        spec = RunSpec()
        assert spec.policy == "liferaft"
        assert spec.workers == 1
        assert not spec.is_parallel
        assert spec.store_path is DEFAULT_STORE

    def test_workers_imply_parallel_execution(self):
        assert RunSpec(workers=2).is_parallel
        assert RunSpec(workers=2).effective_backend == "virtual"
        assert RunSpec(backend="process").is_parallel
        assert RunSpec(backend="process").effective_backend == "process"

    def test_non_positive_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            RunSpec(workers=0)

    def test_non_positive_series_window_rejected(self):
        with pytest.raises(ValueError, match="series_window_ms must be positive"):
            RunSpec(series_window_ms=0.0)
        with pytest.raises(ValueError, match="series_window_ms must be positive"):
            RunSpec(series_window_ms=-10.0)

    def test_with_store_replaces_only_the_store(self):
        spec = RunSpec(alpha=0.5, workers=2)
        in_memory = spec.with_store(None)
        assert in_memory.store_path is None
        assert in_memory.alpha == 0.5
        assert in_memory.workers == 2
        assert spec.store_path is DEFAULT_STORE  # the original is untouched

    def test_specs_are_immutable(self):
        with pytest.raises(AttributeError):
            RunSpec().alpha = 0.9


class TestExecute:
    def test_execute_is_deterministic(self, small_trace, simulator):
        queries = small_trace.with_saturation(0.5).queries
        first = simulator.execute(queries, RunSpec(alpha=0.25))
        second = simulator.execute(queries, RunSpec(alpha=0.25))
        for field in VIRTUAL_CLOCK_PARITY_FIELDS:
            assert getattr(first, field) == getattr(second, field), field

    def test_execute_without_spec_uses_defaults(self, small_trace, simulator):
        result = simulator.execute(small_trace.with_saturation(0.5).queries)
        assert result.completed_queries == len(small_trace)
        assert result.policy_name.startswith("liferaft")

    def test_execute_dispatches_workers_to_parallel_engine(self, small_trace, simulator):
        queries = small_trace.with_saturation(0.5).queries
        serial = simulator.execute(queries, RunSpec(alpha=0.0))
        parallel = simulator.execute(queries, RunSpec(alpha=0.0, workers=2))
        assert parallel.workers == 2
        # The virtual-clock totals are backend-invariant by construction.
        assert parallel.completed_queries == serial.completed_queries

    def test_serial_and_single_worker_virtual_agree(self, small_trace, simulator):
        queries = small_trace.with_saturation(0.5).queries
        serial = simulator.execute(queries, RunSpec(alpha=0.0))
        virtual = simulator.execute(queries, RunSpec(alpha=0.0, backend="virtual"))
        assert serial.result_digest == virtual.result_digest


class TestShimsRemoved:
    """`execute` is the single entry point; the PR-5-era shims are gone."""

    def test_run_shims_are_gone(self, simulator):
        assert not hasattr(simulator, "run")
        assert not hasattr(simulator, "run_parallel")

    def test_replay_shim_is_gone(self):
        import repro.workload.replay as replay

        assert not hasattr(replay, "replay_into_engine")

    def test_disk_import_shim_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.storage.disk  # noqa: F401
