"""Tests for the RunSpec API: dispatch, defaults, and the deprecated shims."""

import warnings

import pytest

from repro.sim.runspec import DEFAULT_STORE, RunSpec
from repro.sim.simulator import (
    VIRTUAL_CLOCK_PARITY_FIELDS,
    SimulationConfig,
    Simulator,
)
from repro.workload.generator import TraceConfig, TraceGenerator


@pytest.fixture(scope="module")
def small_trace():
    return TraceGenerator(TraceConfig(query_count=60, bucket_count=128, seed=17)).generate()


@pytest.fixture(scope="module")
def simulator():
    return Simulator(SimulationConfig(bucket_count=128))


class TestRunSpec:
    def test_defaults_describe_a_serial_run(self):
        spec = RunSpec()
        assert spec.policy == "liferaft"
        assert spec.workers == 1
        assert not spec.is_parallel
        assert spec.store_path is DEFAULT_STORE

    def test_workers_imply_parallel_execution(self):
        assert RunSpec(workers=2).is_parallel
        assert RunSpec(workers=2).effective_backend == "virtual"
        assert RunSpec(backend="process").is_parallel
        assert RunSpec(backend="process").effective_backend == "process"

    def test_non_positive_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            RunSpec(workers=0)

    def test_with_store_replaces_only_the_store(self):
        spec = RunSpec(alpha=0.5, workers=2)
        in_memory = spec.with_store(None)
        assert in_memory.store_path is None
        assert in_memory.alpha == 0.5
        assert in_memory.workers == 2
        assert spec.store_path is DEFAULT_STORE  # the original is untouched

    def test_specs_are_immutable(self):
        with pytest.raises(AttributeError):
            RunSpec().alpha = 0.9


class TestExecute:
    def test_execute_equals_deprecated_run(self, small_trace, simulator):
        queries = small_trace.with_saturation(0.5).queries
        via_execute = simulator.execute(queries, RunSpec(alpha=0.25))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_run = simulator.run(queries, "liferaft", alpha=0.25)
        for field in VIRTUAL_CLOCK_PARITY_FIELDS:
            assert getattr(via_execute, field) == getattr(via_run, field), field

    def test_execute_without_spec_uses_defaults(self, small_trace, simulator):
        result = simulator.execute(small_trace.with_saturation(0.5).queries)
        assert result.completed_queries == len(small_trace)
        assert result.policy_name.startswith("liferaft")

    def test_execute_dispatches_workers_to_parallel_engine(self, small_trace, simulator):
        queries = small_trace.with_saturation(0.5).queries
        serial = simulator.execute(queries, RunSpec(alpha=0.0))
        parallel = simulator.execute(queries, RunSpec(alpha=0.0, workers=2))
        assert parallel.workers == 2
        # The virtual-clock totals are backend-invariant by construction.
        assert parallel.completed_queries == serial.completed_queries

    def test_execute_parallel_equals_deprecated_run_parallel(self, small_trace, simulator):
        queries = small_trace.with_saturation(0.5).queries
        via_execute = simulator.execute(queries, RunSpec(alpha=0.0, workers=2))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_shim = simulator.run_parallel(queries, "liferaft", workers=2, alpha=0.0)
        for field in VIRTUAL_CLOCK_PARITY_FIELDS:
            assert getattr(via_execute, field) == getattr(via_shim, field), field


class TestDeprecatedShims:
    def test_run_warns(self, small_trace, simulator):
        with pytest.warns(DeprecationWarning, match="Simulator.run is deprecated"):
            simulator.run(small_trace.with_saturation(0.5).queries, "liferaft")

    def test_run_parallel_warns(self, small_trace, simulator):
        with pytest.warns(DeprecationWarning, match="Simulator.run_parallel is deprecated"):
            simulator.run_parallel(small_trace.with_saturation(0.5).queries, "liferaft", workers=2)
