"""Tests for the bucket store (range queries against the partitioned table)."""

import pytest

from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.partitioner import BucketPartitioner

LEAF_LEVEL = 8
CURVE_START = 8 << (2 * LEAF_LEVEL)


def build_store(with_objects=True, objects_per_bucket=10, total=35):
    ids = [CURVE_START + 3 * i for i in range(total)]
    rows = [f"row-{i}" for i in range(total)]
    partitioner = BucketPartitioner(
        objects_per_bucket=objects_per_bucket, bucket_megabytes=40.0, leaf_level=LEAF_LEVEL
    )
    layout = partitioner.partition_objects(ids)
    disk = calibrated_disk_for_bucket_read(40.0, 1.2)
    objects = (ids, rows) if with_objects else None
    return BucketStore(layout, disk, objects=objects), ids, rows


class TestMaterialisedStore:
    def test_read_returns_rows_of_that_bucket_only(self):
        store, ids, rows = build_store()
        result = store.read_bucket(0)
        assert len(result.bucket.objects) == 10
        assert result.bucket.objects == tuple(rows[:10])
        assert result.bucket.htm_ids == tuple(ids[:10])
        assert not result.bucket.is_virtual

    def test_read_charges_full_bucket_cost(self):
        store, _, _ = build_store()
        result = store.read_bucket(0)
        assert result.cost_ms == pytest.approx(1200.0, rel=1e-9)
        assert store.reads == 1
        assert store.statistics()["bucket_reads"] == 1

    def test_read_cost_estimate_matches_actual(self):
        store, _, _ = build_store()
        estimate = store.read_cost_ms(1)
        actual = store.read_bucket(1).cost_ms
        assert estimate == pytest.approx(actual)

    def test_charge_io_can_be_disabled(self):
        store, _, _ = build_store()
        result = store.read_bucket(0, charge_io=False)
        assert result.cost_ms == 0.0

    def test_bucket_image_has_no_io_side_effects(self):
        store, _, rows = build_store()
        image = store.bucket_image(2)
        assert image.objects == tuple(rows[20:30])
        assert store.reads == 0

    def test_misaligned_objects_rejected(self):
        store, ids, rows = build_store()
        with pytest.raises(ValueError):
            BucketStore(store.layout, store.disk, objects=(ids, rows[:-1]))
        with pytest.raises(ValueError):
            BucketStore(store.layout, store.disk, objects=(list(reversed(ids)), rows))


class TestVirtualStore:
    def test_virtual_buckets_carry_counts_only(self):
        store, _, _ = build_store(with_objects=False)
        assert store.is_virtual
        result = store.read_bucket(0)
        assert result.bucket.is_virtual
        assert result.bucket.object_count == 10
        assert result.bucket.objects == ()

    def test_partial_final_bucket_costs_less(self):
        store, _, _ = build_store(with_objects=False)
        full = store.read_bucket(0).cost_ms
        partial = store.read_bucket(3).cost_ms  # 5 of 10 objects
        assert partial < full
