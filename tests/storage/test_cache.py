"""Tests for the LRU cache, including property-based replacement checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.cache import CacheStatistics, LRUCache


class TestBasics:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_put_roundtrip(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert len(cache) == 1
        assert "a" in cache

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        evicted = cache.put("c", 3)
        assert evicted == ("b", 2)
        assert cache.contains("a") and cache.contains("c") and not cache.contains("b")

    def test_put_existing_key_refreshes_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 10) is None
        assert cache.peek("a") == 10
        assert cache.keys_by_recency() == ("b", "a")

    def test_contains_and_peek_have_no_side_effects(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.contains("a")
        cache.peek("a")
        # "a" is still least recently used, so it gets evicted next.
        cache.put("c", 3)
        assert not cache.contains("a")
        # And statistics were not perturbed by contains/peek.
        assert cache.statistics.hits == 0
        assert cache.statistics.misses == 0

    def test_invalidate_and_clear(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_resize_evicts_oldest(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.resize(1)
        assert cache.keys_by_recency() == ("c",)
        with pytest.raises(ValueError):
            cache.resize(0)


class TestStatistics:
    def test_hit_rate_accounting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        stats = cache.statistics
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.accesses == 3
        snapshot = stats.snapshot()
        assert snapshot["hits"] == 2 and snapshot["evictions"] == 0

    def test_empty_statistics(self):
        assert CacheStatistics().hit_rate == 0.0


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200),
    )
    @settings(max_examples=80)
    def test_capacity_never_exceeded_and_recent_keys_present(self, capacity, keys):
        cache = LRUCache(capacity)
        for key in keys:
            cache.put(key, key)
            assert len(cache) <= capacity
        # The most recently inserted distinct keys must be resident.
        recent_distinct = []
        for key in reversed(keys):
            if key not in recent_distinct:
                recent_distinct.append(key)
            if len(recent_distinct) == capacity:
                break
        for key in recent_distinct:
            assert cache.contains(key)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_unbounded_capacity_never_evicts(self, keys):
        cache = LRUCache(1000)
        for key in keys:
            cache.put(key, key)
        assert cache.statistics.evictions == 0
        assert len(cache) == len(set(keys))
