"""Tests for equal-sized bucket partitioning along the HTM curve."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm.curve import HTMRange
from repro.storage.partitioner import (
    BucketPartitioner,
    BucketSpec,
    PartitionLayout,
    layout_from_ranges,
)

LEAF_LEVEL = 8
CURVE_START = 8 << (2 * LEAF_LEVEL)
CURVE_END = (16 << (2 * LEAF_LEVEL)) - 1


def sorted_ids(draw_count=st.integers(min_value=1, max_value=400)):
    return draw_count.flatmap(
        lambda n: st.lists(
            st.integers(min_value=CURVE_START, max_value=CURVE_END), min_size=n, max_size=n
        ).map(sorted)
    )


class TestPartitionObjects:
    def test_bucket_counts_and_sizes(self):
        ids = sorted(range(CURVE_START, CURVE_START + 95))
        partitioner = BucketPartitioner(
            objects_per_bucket=10, bucket_megabytes=40.0, leaf_level=LEAF_LEVEL
        )
        layout = partitioner.partition_objects(ids)
        assert len(layout) == 10
        assert [b.object_count for b in layout][:-1] == [10] * 9
        assert layout[9].object_count == 5
        assert layout[0].megabytes == pytest.approx(40.0)
        assert layout[9].megabytes == pytest.approx(20.0)
        assert layout.total_objects() == 95

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            BucketPartitioner().partition_objects([])

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError):
            BucketPartitioner(leaf_level=LEAF_LEVEL).partition_objects(
                [CURVE_START + 5, CURVE_START + 1]
            )

    @given(sorted_ids(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_layout_covers_curve_without_gaps(self, ids, per_bucket):
        partitioner = BucketPartitioner(
            objects_per_bucket=per_bucket, bucket_megabytes=40.0, leaf_level=LEAF_LEVEL
        )
        layout = partitioner.partition_objects(ids)
        assert layout[0].htm_range.low == CURVE_START
        assert layout[-1].htm_range.high == CURVE_END
        for a, b in zip(layout, list(layout)[1:]):
            assert b.htm_range.low == a.htm_range.high + 1
        assert layout.total_objects() == len(ids)

    @given(sorted_ids(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_every_object_maps_to_a_bucket_holding_it(self, ids, per_bucket):
        partitioner = BucketPartitioner(
            objects_per_bucket=per_bucket, bucket_megabytes=40.0, leaf_level=LEAF_LEVEL
        )
        layout = partitioner.partition_objects(ids)
        # Reconstruct per-bucket counts by locating each object's bucket.
        counts = {b.index: 0 for b in layout}
        for htm_id in ids:
            counts[layout.bucket_for_htm_id(htm_id).index] += 1
        assert counts == {b.index: b.object_count for b in layout}

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            BucketPartitioner(objects_per_bucket=0)
        with pytest.raises(ValueError):
            BucketPartitioner(bucket_megabytes=0.0)


class TestPartitionDensity:
    def test_equal_width_by_default(self):
        partitioner = BucketPartitioner(objects_per_bucket=100, leaf_level=LEAF_LEVEL)
        layout = partitioner.partition_density(bucket_count=16)
        widths = [len(b.htm_range) for b in layout]
        assert max(widths) - min(widths) <= 1
        assert layout.total_objects() == 16 * 100

    def test_denser_regions_get_narrower_buckets(self):
        partitioner = BucketPartitioner(objects_per_bucket=100, leaf_level=LEAF_LEVEL)
        densities = [4.0] * 4 + [1.0] * 4
        layout = partitioner.partition_density(bucket_count=8, densities=densities)
        dense_width = len(layout[0].htm_range)
        sparse_width = len(layout[7].htm_range)
        assert dense_width < sparse_width
        assert layout[-1].htm_range.high == CURVE_END

    def test_density_validation(self):
        partitioner = BucketPartitioner()
        with pytest.raises(ValueError):
            partitioner.partition_density(0)
        with pytest.raises(ValueError):
            partitioner.partition_density(4, densities=[1.0, 2.0])
        with pytest.raises(ValueError):
            partitioner.partition_density(2, densities=[1.0, -1.0])


class TestPartitionLayout:
    def _layout(self):
        return layout_from_ranges(
            [(CURVE_START, CURVE_START + 99), (CURVE_START + 100, CURVE_END)],
            [50, 70],
            leaf_level=LEAF_LEVEL,
        )

    def test_lookup_by_htm_id(self):
        layout = self._layout()
        assert layout.bucket_for_htm_id(CURVE_START + 3).index == 0
        assert layout.bucket_for_htm_id(CURVE_START + 100).index == 1
        with pytest.raises(KeyError):
            layout.bucket_for_htm_id(CURVE_START - 1)

    def test_buckets_for_range(self):
        layout = self._layout()
        spanning = layout.buckets_for_range(HTMRange(CURVE_START + 90, CURVE_START + 110))
        assert [b.index for b in spanning] == [0, 1]
        single = layout.buckets_for_range(HTMRange(CURVE_START + 200, CURVE_START + 300))
        assert [b.index for b in single] == [1]

    def test_describe_and_sizes(self):
        layout = self._layout()
        summary = layout.describe()
        assert summary["bucket_count"] == 2
        assert summary["total_objects"] == 120
        assert layout.total_megabytes() > 0

    def test_layout_validation(self):
        good = BucketSpec(0, HTMRange(CURVE_START, CURVE_END), 10, 1.0)
        with pytest.raises(ValueError):
            PartitionLayout([], leaf_level=LEAF_LEVEL)
        bad_index = BucketSpec(2, HTMRange(CURVE_START, CURVE_END), 10, 1.0)
        with pytest.raises(ValueError):
            PartitionLayout([good, bad_index], leaf_level=LEAF_LEVEL)
