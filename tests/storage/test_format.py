"""Property-style tests of the columnar bucket codec and file format.

The on-disk format is load-bearing for every file-backed experiment, so
its invariants are pinned directly: encode→decode identity on random
catalogs, HTM-order preservation, and clean :class:`StoreFormatError`
failures on corrupted or truncated files (never garbage buckets).
"""

import os
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.objects import CatalogTable, CelestialObject
from repro.storage.format import (
    FORMAT_VERSION,
    MAGIC,
    BucketFileReader,
    BucketFileWriter,
    StoreFormatError,
    decode_bucket_page,
    encode_bucket_page,
    read_layout,
)
from repro.storage.ingest import ingest_catalog, materialize_layout, synthesize_bucket_rows
from repro.storage.partitioner import BucketPartitioner

LEAF_LEVEL = 8
CURVE_START = 8 << (2 * LEAF_LEVEL)
CURVE_END = (16 << (2 * LEAF_LEVEL)) - 1


@st.composite
def random_catalog(draw):
    """Draw a small random catalog as HTM-sorted CelestialObjects."""
    ids = draw(
        st.lists(
            st.integers(min_value=CURVE_START, max_value=CURVE_END),
            min_size=1,
            max_size=120,
        )
    )
    ids.sort()
    surveys = ("sdss", "twomass", "usnob")
    rows = []
    for position, htm_id in enumerate(ids):
        rows.append(
            CelestialObject(
                object_id=draw(st.integers(min_value=-(2**40), max_value=2**40)),
                ra=draw(st.floats(0.0, 360.0, allow_nan=False)),
                dec=draw(st.floats(-90.0, 90.0, allow_nan=False)),
                htm_id=htm_id,
                magnitude=draw(st.floats(5.0, 30.0, allow_nan=False)),
                survey=surveys[position % len(surveys)],
            )
        )
    return rows


class TestPageCodec:
    @given(random_catalog())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_encode_decode_identity(self, rows):
        codes = {}
        payload = encode_bucket_page([r.htm_id for r in rows], rows, codes)
        surveys = sorted(codes, key=codes.get)
        ids, decoded = decode_bucket_page(payload, surveys)
        assert list(ids) == [r.htm_id for r in rows]
        assert list(decoded) == rows

    @given(random_catalog())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_decoded_pages_stay_htm_sorted(self, rows):
        codes = {}
        payload = encode_bucket_page([r.htm_id for r in rows], rows, codes)
        ids, _ = decode_bucket_page(payload, sorted(codes, key=codes.get))
        assert list(ids) == sorted(ids)

    def test_unsorted_page_rejected_at_encode(self):
        rows = [
            CelestialObject(object_id=i, ra=0.0, dec=0.0, htm_id=htm_id)
            for i, htm_id in enumerate([CURVE_START + 5, CURVE_START + 1])
        ]
        with pytest.raises(ValueError, match="HTM-sorted"):
            encode_bucket_page([r.htm_id for r in rows], rows, {})

    def test_empty_page_round_trips(self):
        payload = encode_bucket_page([], [], {})
        ids, rows = decode_bucket_page(payload, [])
        assert ids == () and rows == ()

    def test_length_mismatch_detected(self):
        rows = [CelestialObject(object_id=0, ra=1.0, dec=2.0, htm_id=CURVE_START)]
        payload = encode_bucket_page([CURVE_START], rows, {})
        with pytest.raises(StoreFormatError, match="length mismatch"):
            decode_bucket_page(payload[:-3], ["sdss"])

    def test_unknown_survey_code_detected(self):
        rows = [CelestialObject(object_id=0, ra=1.0, dec=2.0, htm_id=CURVE_START)]
        payload = encode_bucket_page([CURVE_START], rows, {})
        with pytest.raises(StoreFormatError, match="survey code"):
            decode_bucket_page(payload, [])


def build_catalog(count: int, seed: int = 0) -> CatalogTable:
    rows = []
    span = CURVE_END - CURVE_START
    for i in range(count):
        htm_id = CURVE_START + ((i * 7919 + seed * 31) % span)
        rows.append(
            CelestialObject(
                object_id=i,
                ra=(i * 13.7) % 360.0,
                dec=((i * 7.3) % 160.0) - 80.0,
                htm_id=htm_id,
                magnitude=14.0 + (i % 9),
                survey="sdss" if i % 2 else "twomass",
            )
        )
    return CatalogTable("sdss", rows)


class TestFileRoundTrip:
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_catalog_ingest_round_trips_exactly(self, tmp_path_factory, count, per_bucket, seed):
        tmp_path = tmp_path_factory.mktemp("fmt")
        table = build_catalog(count, seed)
        path = tmp_path / "catalog.lrbs"
        manifest = ingest_catalog(path, table, objects_per_bucket=per_bucket, leaf_level=LEAF_LEVEL)
        assert manifest.total_rows == count
        with BucketFileReader(path) as reader:
            assert reader.generation == manifest.generation
            recovered = []
            previous_high = CURVE_START - 1
            for spec in reader.layout:
                assert spec.htm_range.low == previous_high + 1, "gap in the layout"
                previous_high = spec.htm_range.high
                ids, rows = reader.read_bucket(spec.index)
                assert list(ids) == sorted(ids)
                assert len(rows) == spec.object_count
                recovered.extend(rows)
        assert recovered == list(table.rows)

    def test_synthesized_object_ids_unique_across_buckets(self, tmp_path):
        # Uneven row counts per bucket (the last bucket carries the
        # remainder) must not produce colliding object IDs.
        layout = BucketPartitioner(objects_per_bucket=8).partition_density(
            4, total_objects=35
        )
        materialize_layout(tmp_path / "u.lrbs", layout, rows_per_bucket=10)
        with BucketFileReader(tmp_path / "u.lrbs") as reader:
            ids = [
                row.object_id
                for index in range(len(reader.layout))
                for row in reader.read_bucket(index)[1]
            ]
        assert len(ids) == len(set(ids))

    def test_layout_round_trips(self, tmp_path):
        layout = BucketPartitioner().partition_density(
            24, densities=[1.0 + (i % 5) for i in range(24)]
        )
        materialize_layout(tmp_path / "d.lrbs", layout, rows_per_bucket=8)
        assert read_layout(tmp_path / "d.lrbs") == layout

    def test_generation_covers_page_content_not_just_layout(self, tmp_path):
        # Same layout, same per-bucket row counts, different row *contents*
        # (seed): the generations must differ, otherwise a shared decoded-
        # page cache could serve stale pages across re-ingests.
        layout = BucketPartitioner().partition_density(6)
        a = materialize_layout(tmp_path / "a.lrbs", layout, rows_per_bucket=8, seed=1)
        b = materialize_layout(tmp_path / "b.lrbs", layout, rows_per_bucket=8, seed=2)
        assert a.generation != b.generation

    def test_writer_requires_all_buckets(self, tmp_path):
        layout = BucketPartitioner().partition_density(4)
        writer = BucketFileWriter(tmp_path / "partial.lrbs", layout)
        rows = synthesize_bucket_rows(layout[0], 4)
        writer.append_bucket([r.htm_id for r in rows], rows)
        with pytest.raises(ValueError, match="only 1 pages"):
            writer.finish()
        writer.abort()
        assert not (tmp_path / "partial.lrbs").exists()

    def test_writer_rejects_out_of_range_rows(self, tmp_path):
        layout = BucketPartitioner().partition_density(4)
        writer = BucketFileWriter(tmp_path / "bad.lrbs", layout)
        foreign = synthesize_bucket_rows(layout[3], 2)
        with pytest.raises(ValueError, match="outside bucket"):
            writer.append_bucket([r.htm_id for r in foreign], foreign)
        writer.abort()


class TestCorruptionDetection:
    @pytest.fixture
    def store_file(self, tmp_path):
        layout = BucketPartitioner().partition_density(8)
        manifest = materialize_layout(tmp_path / "site.lrbs", layout, rows_per_bucket=32)
        return manifest.path

    def test_bad_magic_rejected(self, store_file):
        with open(store_file, "r+b") as handle:
            handle.write(b"NOPE")
        with pytest.raises(StoreFormatError, match="bad magic"):
            BucketFileReader(store_file)

    def test_unsupported_version_rejected(self, store_file):
        with open(store_file, "r+b") as handle:
            handle.seek(len(MAGIC))
            handle.write(struct.pack("<H", FORMAT_VERSION + 1))
        # The version bump also breaks the header CRC; both are clean errors.
        with pytest.raises(StoreFormatError):
            BucketFileReader(store_file)

    def test_header_corruption_rejected(self, store_file):
        with open(store_file, "r+b") as handle:
            handle.seek(8)
            handle.write(b"\xff\xff")
        with pytest.raises(StoreFormatError, match="header checksum"):
            BucketFileReader(store_file)

    def test_page_corruption_detected_on_read(self, store_file):
        with BucketFileReader(store_file) as intact:
            intact.read_bucket(3)  # sanity: readable before corruption
        size = os.path.getsize(store_file)
        with open(store_file, "r+b") as handle:
            handle.seek(size // 3)
            original = handle.read(1)
            handle.seek(size // 3)
            handle.write(bytes([original[0] ^ 0xFF]))
        reader = BucketFileReader(store_file)  # metadata may still be intact
        with pytest.raises(StoreFormatError, match="checksum mismatch"):
            for index in range(len(reader.layout)):
                reader.read_bucket(index)
        reader.close()

    def test_truncated_file_rejected(self, store_file, tmp_path):
        blob = open(store_file, "rb").read()
        truncated = tmp_path / "truncated.lrbs"
        truncated.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(StoreFormatError):
            BucketFileReader(truncated)

    def test_unfinished_ingest_rejected(self, tmp_path):
        layout = BucketPartitioner().partition_density(4)
        writer = BucketFileWriter(tmp_path / "unfinished.lrbs", layout)
        rows = synthesize_bucket_rows(layout[0], 4)
        writer.append_bucket([r.htm_id for r in rows], rows)
        writer._handle.flush()
        with pytest.raises(StoreFormatError, match="ingest did not finish"):
            BucketFileReader(tmp_path / "unfinished.lrbs")
        writer.abort()

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(StoreFormatError, match="cannot open"):
            BucketFileReader(tmp_path / "missing.lrbs")


class TestColumnarBlocks:
    """Zero-copy ColumnBlock reads: parity with the strict row path."""

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_block_decode_matches_row_decode(self, tmp_path_factory, count, per_bucket, seed):
        """Every mmap window decodes to the same rows the strict path yields.

        Random catalogs over random bucket widths exercise empty buckets,
        single-row pages, and pages at both ends of the mmap (first page
        right after the header, last page right before the directory).
        """
        tmp_path = tmp_path_factory.mktemp("blocks")
        table = build_catalog(count, seed)
        path = tmp_path / "catalog.lrbs"
        ingest_catalog(path, table, objects_per_bucket=per_bucket, leaf_level=LEAF_LEVEL)
        with BucketFileReader(path) as reader:
            for index in range(len(reader)):
                block = reader.read_bucket_block(index)
                ids, rows = reader.read_bucket(index)
                assert list(block.htm_ids) == list(ids)
                assert list(block.rows()) == list(rows)
                assert len(block) == reader.row_count(index)
                for position, row in enumerate(rows):
                    assert block.row(position) == row
                    assert block.object_ids[position] == row.object_id
                    assert block.ra[position] == row.ra
                    assert block.dec[position] == row.dec
                    assert block.magnitude[position] == row.magnitude
                    assert block.surveys[block.survey_codes[position]] == row.survey

    def test_blocks_survive_reader_close(self, tmp_path):
        """Unmapping is deferred while blocks still hold column views."""
        layout = BucketPartitioner(objects_per_bucket=16).partition_density(4, total_objects=64)
        materialize_layout(tmp_path / "site.lrbs", layout, rows_per_bucket=8)
        reader = BucketFileReader(tmp_path / "site.lrbs")
        block = reader.read_bucket_block(0)
        reader.close()
        assert list(block.htm_ids) == sorted(block.htm_ids)
        assert len(block.rows()) == 8

    def test_empty_bucket_block(self, tmp_path):
        """Zero-row pages decode to empty, zero-length blocks."""
        layout = BucketPartitioner().partition_density(4)
        writer = BucketFileWriter(tmp_path / "sparse.lrbs", layout)
        populated = synthesize_bucket_rows(layout[1], 6)
        for spec in layout:
            if spec.index == 1:
                writer.append_bucket([r.htm_id for r in populated], populated)
            else:
                writer.append_bucket([], [])
        writer.finish()
        with BucketFileReader(tmp_path / "sparse.lrbs") as reader:
            for index in range(len(reader)):
                block = reader.read_bucket_block(index)
                if index == 1:
                    assert len(block) == 6
                else:
                    assert len(block) == 0
                    assert block.rows() == ()


class TestParallelIngest:
    def test_parallel_ingest_is_byte_identical(self, tmp_path):
        layout = BucketPartitioner(objects_per_bucket=16).partition_density(4, total_objects=256)
        serial = materialize_layout(tmp_path / "serial.lrbs", layout, rows_per_bucket=12)
        parallel = materialize_layout(
            tmp_path / "parallel.lrbs", layout, rows_per_bucket=12, workers=2
        )
        assert parallel.generation == serial.generation
        assert (tmp_path / "parallel.lrbs").read_bytes() == (tmp_path / "serial.lrbs").read_bytes()

    def test_workers_validated(self, tmp_path):
        layout = BucketPartitioner(objects_per_bucket=16).partition_density(4, total_objects=64)
        with pytest.raises(ValueError, match="workers must be positive"):
            materialize_layout(tmp_path / "w.lrbs", layout, rows_per_bucket=4, workers=0)
