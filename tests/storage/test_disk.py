"""Tests for the analytical disk model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.disk_model import (
    DiskModel,
    DiskParameters,
    IOKind,
    IORecord,
    IOTrace,
    calibrated_disk_for_bucket_read,
)


class TestDiskParameters:
    def test_defaults_are_physical(self):
        params = DiskParameters()
        assert params.positioning_ms > 0
        assert params.transfer_ms(1.0) > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters(sequential_bandwidth_mb_per_s=0)
        with pytest.raises(ValueError):
            DiskParameters(average_seek_ms=-1)
        with pytest.raises(ValueError):
            DiskParameters(page_size_kb=0)

    @given(st.floats(min_value=0.0, max_value=1000.0))
    def test_transfer_time_scales_linearly(self, megabytes):
        params = DiskParameters()
        assert params.transfer_ms(megabytes) == pytest.approx(
            megabytes * params.transfer_ms(1.0), rel=1e-9, abs=1e-9
        )

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters().transfer_ms(-1.0)


class TestDiskModel:
    def test_bucket_read_includes_positioning_and_transfer(self):
        disk = DiskModel(DiskParameters(sequential_bandwidth_mb_per_s=40.0))
        cost = disk.bucket_read_ms(40.0)
        assert cost == pytest.approx(disk.parameters.positioning_ms + 1000.0)

    def test_sequential_read_beats_random_pages_for_large_transfers(self):
        disk = DiskModel()
        sequential = disk.bucket_read_ms(40.0)
        pages = int(40.0 * 1024 / disk.parameters.page_size_kb)
        random_cost = disk.random_page_read_ms(pages)
        assert sequential < random_cost

    def test_probe_requires_positive_pages(self):
        disk = DiskModel()
        with pytest.raises(ValueError):
            disk.index_probe_ms(0)
        with pytest.raises(ValueError):
            disk.random_page_read_ms(-1)

    def test_trace_records_when_enabled(self):
        trace = IOTrace(enabled=True)
        disk = DiskModel(trace=trace)
        disk.bucket_read_ms(40.0, label="bucket:1")
        disk.index_probe_ms(3, label="probe")
        assert trace.count(IOKind.SEQUENTIAL_BUCKET_READ) == 1
        assert trace.count(IOKind.RANDOM_INDEX_PROBE) == 1
        assert trace.total_ms() > 0
        assert trace.total_megabytes(IOKind.SEQUENTIAL_BUCKET_READ) == pytest.approx(40.0)

    def test_trace_disabled_by_default(self):
        disk = DiskModel()
        disk.bucket_read_ms(40.0)
        assert disk.trace.records == []

    def test_trace_cap_and_clear(self):
        trace = IOTrace(enabled=True, max_records=2)
        for _ in range(5):
            trace.record(IORecord(IOKind.RANDOM_PAGE_READ, 0.01, 1.0))
        assert len(trace.records) == 2
        trace.clear()
        assert trace.records == []


class TestTraceRingBuffer:
    """The trace is a ring buffer: detail is bounded, aggregates are exact."""

    def test_ring_keeps_newest_records(self):
        trace = IOTrace(enabled=True, max_records=3)
        for i in range(10):
            trace.record(IORecord(IOKind.RANDOM_PAGE_READ, 0.01, 1.0, label=f"r{i}"))
        assert [r.label for r in trace.records] == ["r7", "r8", "r9"]
        assert trace.dropped == 7

    def test_aggregates_survive_ring_eviction(self):
        trace = IOTrace(enabled=True, max_records=2)
        for _ in range(100):
            trace.record(IORecord(IOKind.SEQUENTIAL_BUCKET_READ, 40.0, 1200.0))
        for _ in range(50):
            trace.record(IORecord(IOKind.RANDOM_INDEX_PROBE, 0.008, 13.0))
        # Only 2 detailed records remain, but the counters are exact.
        assert len(trace.records) == 2
        assert trace.count(IOKind.SEQUENTIAL_BUCKET_READ) == 100
        assert trace.count(IOKind.RANDOM_INDEX_PROBE) == 50
        assert trace.total_ms(IOKind.SEQUENTIAL_BUCKET_READ) == pytest.approx(120_000.0)
        assert trace.total_megabytes(IOKind.SEQUENTIAL_BUCKET_READ) == pytest.approx(4000.0)
        assert trace.total_ms() == pytest.approx(120_000.0 + 650.0)

    def test_memory_stays_bounded_on_long_runs(self):
        trace = IOTrace(enabled=True, max_records=16)
        disk = DiskModel(trace=trace)
        for i in range(10_000):
            disk.bucket_read_ms(40.0, label=f"bucket:{i % 7}")
        assert len(trace.records) == 16
        assert trace.count(IOKind.SEQUENTIAL_BUCKET_READ) == 10_000

    def test_clear_resets_aggregates_and_drop_counter(self):
        trace = IOTrace(enabled=True, max_records=1)
        trace.record(IORecord(IOKind.RANDOM_PAGE_READ, 0.01, 1.0))
        trace.record(IORecord(IOKind.RANDOM_PAGE_READ, 0.01, 1.0))
        assert trace.dropped == 1
        trace.clear()
        assert trace.dropped == 0
        assert trace.count(IOKind.RANDOM_PAGE_READ) == 0
        assert trace.total_ms() == 0.0

    def test_disabled_trace_records_nothing(self):
        trace = IOTrace(enabled=False)
        trace.record(IORecord(IOKind.RANDOM_PAGE_READ, 0.01, 1.0))
        assert trace.records == []
        assert trace.count(IOKind.RANDOM_PAGE_READ) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            IOTrace(max_records=0)


class TestCalibration:
    def test_calibrated_disk_reproduces_paper_tb(self):
        disk = calibrated_disk_for_bucket_read(40.0, 1.2)
        assert disk.bucket_read_ms(40.0) == pytest.approx(1200.0, rel=1e-9)

    def test_calibration_rejects_impossible_targets(self):
        with pytest.raises(ValueError):
            calibrated_disk_for_bucket_read(40.0, 0.0)
        with pytest.raises(ValueError):
            calibrated_disk_for_bucket_read(40.0, 0.001)
