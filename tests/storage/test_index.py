"""Tests for the spatial index and its probe-cost accounting."""

import pytest

from repro.htm.curve import HTMRange, HTMRangeSet
from repro.storage.disk_model import DiskModel
from repro.storage.index import SpatialIndex


def build_index(count=1000, with_disk=True):
    ids = list(range(10_000, 10_000 + count))
    rows = [f"row-{i}" for i in range(count)]
    disk = DiskModel() if with_disk else None
    return SpatialIndex(ids, rows=rows, disk=disk), ids, rows


class TestConstruction:
    def test_unsorted_ids_rejected(self):
        with pytest.raises(ValueError):
            SpatialIndex([3, 1, 2])

    def test_misaligned_rows_rejected(self):
        with pytest.raises(ValueError):
            SpatialIndex([1, 2, 3], rows=["a"])

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            SpatialIndex([1], rows_per_page=0)

    def test_empty_index(self):
        index = SpatialIndex([])
        assert len(index) == 0
        assert index.height == 1
        result = index.probe_range(HTMRange(0, 10))
        assert result.row_count == 0


class TestProbes:
    def test_range_probe_returns_matching_rows(self):
        index, ids, rows = build_index()
        result = index.probe_range(HTMRange(10_010, 10_019))
        assert result.rows == tuple(rows[10:20])
        assert result.pages_read >= 1
        assert result.cost_ms > 0
        assert index.probes == 1

    def test_probe_outside_index_returns_nothing(self):
        index, _, _ = build_index()
        result = index.probe_range(HTMRange(0, 5))
        assert result.row_count == 0
        # Even an empty probe pays the tree descent.
        assert result.pages_read >= index.height

    def test_larger_results_touch_more_pages(self):
        index, _, _ = build_index()
        small = index.probe_range(HTMRange(10_000, 10_004))
        large = index.probe_range(HTMRange(10_000, 10_500))
        assert large.pages_read > small.pages_read
        assert large.cost_ms > small.cost_ms

    def test_probe_ranges_merges_covers(self):
        index, _, rows = build_index()
        cover = HTMRangeSet.from_pairs([(10_000, 10_004), (10_100, 10_104)])
        result = index.probe_ranges(cover)
        assert result.rows == tuple(rows[0:5] + rows[100:105])

    def test_count_range_is_free(self):
        index, _, _ = build_index()
        assert index.count_range(HTMRange(10_000, 10_009)) == 10
        assert index.probes == 0

    def test_no_disk_means_zero_cost(self):
        index, _, _ = build_index(with_disk=False)
        assert index.probe_range(HTMRange(10_000, 10_010)).cost_ms == 0.0
        assert index.estimated_probe_cost_ms(100) == 0.0

    def test_estimated_cost_tracks_expected_rows(self):
        index, _, _ = build_index()
        assert index.estimated_probe_cost_ms(1000) > index.estimated_probe_cost_ms(10)
