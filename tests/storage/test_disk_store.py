"""Tests of the file-backed bucket store and the decoded-page cache tier."""

import pickle

import pytest

from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.disk_store import (
    DEFAULT_PAGE_CACHE_BUCKETS,
    DecodedPageCache,
    DiskBucketStore,
    open_disk_store,
)
from repro.storage.ingest import materialize_layout
from repro.storage.partitioner import BucketPartitioner

BUCKETS = 16
ROWS = 32


@pytest.fixture(scope="module")
def layout():
    return BucketPartitioner().partition_density(
        BUCKETS, densities=[1.0 + (i % 4) for i in range(BUCKETS)]
    )


@pytest.fixture
def store_path(tmp_path, layout):
    manifest = materialize_layout(tmp_path / "site.lrbs", layout, rows_per_bucket=ROWS)
    return manifest.path


def make_disk():
    return calibrated_disk_for_bucket_read(40.0, 1.2)


class TestReadInterfaceParity:
    """The disk store must be a drop-in for the in-memory BucketStore."""

    def test_identical_costs_and_counters(self, store_path, layout):
        disk_store = open_disk_store(store_path, make_disk())
        memory = BucketStore(layout, make_disk())
        for index in range(BUCKETS):
            file_read = disk_store.read_bucket(index)
            memory_read = memory.read_bucket(index)
            assert file_read.cost_ms == pytest.approx(memory_read.cost_ms, rel=1e-12)
            assert file_read.bucket.object_count == memory_read.bucket.object_count
            assert file_read.bucket.spec == memory_read.bucket.spec
        assert disk_store.reads == memory.reads
        assert disk_store.bytes_read_mb == pytest.approx(memory.bytes_read_mb)
        disk_store.close()

    def test_read_cost_estimate_matches_actual(self, store_path):
        store = open_disk_store(store_path, make_disk())
        assert store.read_cost_ms(2) == pytest.approx(store.read_bucket(2).cost_ms)
        store.close()

    def test_buckets_are_materialised_and_sorted(self, store_path):
        store = open_disk_store(store_path)
        assert not store.is_virtual
        bucket = store.bucket_image(5)
        assert len(bucket.objects) == ROWS
        assert not bucket.is_virtual
        assert list(bucket.htm_ids) == sorted(bucket.htm_ids)
        for obj in bucket.objects:
            assert obj.htm_id in bucket.spec.htm_range
        store.close()

    def test_layout_adopted_from_file(self, store_path, layout):
        store = open_disk_store(store_path)
        assert store.layout == layout
        store.close()


class TestDecodedPageTier:
    def test_repeat_reads_hit_the_page_cache(self, store_path):
        store = open_disk_store(store_path, make_disk())
        first = store.read_bucket(3)
        again = store.read_bucket(3)
        assert store.reads == 2  # virtual-read accounting unaffected
        assert store.page_reads == 1  # but only one physical decode
        assert again.cost_ms == pytest.approx(first.cost_ms)  # full cost charged
        assert store.statistics()["page_cache_hit_rate"] > 0.0
        store.close()

    def test_disabled_tier_always_reads(self, store_path):
        store = open_disk_store(store_path, make_disk(), page_cache_buckets=0)
        store.read_bucket(3)
        store.read_bucket(3)
        assert store.page_reads == 2
        store.close()

    def test_shared_cache_is_keyed_by_generation(self, tmp_path, layout):
        shared = DecodedPageCache(capacity=DEFAULT_PAGE_CACHE_BUCKETS)
        path_a = materialize_layout(tmp_path / "a.lrbs", layout, rows_per_bucket=4).path
        path_b = materialize_layout(tmp_path / "b.lrbs", layout, rows_per_bucket=8).path
        store_a = DiskBucketStore(path_a, make_disk(), page_cache=shared)
        store_b = DiskBucketStore(path_b, make_disk(), page_cache=shared)
        assert store_a.generation != store_b.generation
        bucket_a = store_a.read_bucket(0).bucket
        bucket_b = store_b.read_bucket(0).bucket
        # Same bucket index, different generations: both stores decoded
        # their own page rather than sharing a stale entry.
        assert len(bucket_a.objects) == 4
        assert len(bucket_b.objects) == 8
        assert store_a.page_reads == 1 and store_b.page_reads == 1
        store_a.close()
        store_b.close()

    def test_identical_content_shares_generation(self, tmp_path, layout):
        path_a = materialize_layout(tmp_path / "a.lrbs", layout, rows_per_bucket=4).path
        path_b = materialize_layout(tmp_path / "b.lrbs", layout, rows_per_bucket=4).path
        store_a = open_disk_store(path_a)
        store_b = open_disk_store(path_b)
        assert store_a.generation == store_b.generation
        store_a.close()
        store_b.close()

    def test_real_read_time_is_tracked(self, store_path):
        store = open_disk_store(store_path, make_disk())
        store.read_bucket(1)
        assert store.real_read_s > 0.0
        stats = store.statistics()
        assert stats["page_reads"] == 1.0
        assert stats["real_read_s"] == store.real_read_s
        store.close()


class TestPathSnapshots:
    def test_snapshot_restores_as_disk_store(self, store_path, layout):
        store = open_disk_store(store_path, make_disk())
        snapshot = store.snapshot()
        assert snapshot.layout is None and snapshot.catalog is None
        restored = BucketStore.from_snapshot(pickle.loads(pickle.dumps(snapshot)))
        assert isinstance(restored, DiskBucketStore)
        assert restored.layout == layout
        assert restored.generation == store.generation
        assert restored.reads == 0  # fresh counters per restore
        original = store.read_bucket(7)
        mirrored = restored.read_bucket(7)
        assert mirrored.cost_ms == pytest.approx(original.cost_ms)
        assert mirrored.bucket.htm_ids == original.bucket.htm_ids
        store.close()
        restored.close()

    def test_snapshot_pickles_small(self, store_path):
        store = open_disk_store(store_path)
        payload = pickle.dumps(store.snapshot())
        assert len(payload) < 1024, "path snapshots must stay tiny"
        store.close()

    def test_generation_mismatch_fails_cleanly(self, tmp_path, layout, store_path):
        store = open_disk_store(store_path)
        snapshot = store.snapshot()
        store.close()
        # Re-ingest different content at the same path.
        materialize_layout(store_path, layout, rows_per_bucket=2)
        with pytest.raises(ValueError, match="generation"):
            BucketStore.from_snapshot(snapshot)

    def test_layoutless_snapshot_without_path_rejected(self, store_path):
        store = open_disk_store(store_path)
        snapshot = store.snapshot()
        store.close()
        import dataclasses

        broken = dataclasses.replace(snapshot, store_path=None)
        with pytest.raises(ValueError, match="neither a layout nor a store path"):
            BucketStore.from_snapshot(broken)
