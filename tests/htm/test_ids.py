"""Unit and property tests for HTM ID encoding and arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.htm import ids as htm_ids


valid_ids = st.integers(min_value=0, max_value=14).flatmap(
    lambda level: st.integers(
        min_value=8 << (2 * level), max_value=(16 << (2 * level)) - 1
    )
)


class TestValidity:
    def test_root_faces_are_valid(self):
        for face in range(8, 16):
            assert htm_ids.is_valid_htm_id(face)
            assert htm_ids.htm_level(face) == 0

    def test_small_integers_are_invalid(self):
        for value in range(0, 8):
            assert not htm_ids.is_valid_htm_id(value)

    def test_odd_bit_lengths_are_invalid(self):
        # 16..31 have 5 bits: one child digit short of a valid level-1 ID.
        assert not htm_ids.is_valid_htm_id(17)
        with pytest.raises(ValueError):
            htm_ids.htm_level(17)


class TestNames:
    def test_known_names(self):
        assert htm_ids.htm_name_to_id("S0") == 8
        assert htm_ids.htm_name_to_id("N3") == 15
        # "N012" is face N0 (ID 12) followed by child digits 1 and 2.
        assert htm_ids.htm_name_to_id("N012") == ((12 << 2) | 1) << 2 | 2

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError):
            htm_ids.htm_name_to_id("X0")
        with pytest.raises(ValueError):
            htm_ids.htm_name_to_id("N04")

    @given(valid_ids)
    def test_name_roundtrip(self, htm_id):
        assert htm_ids.htm_name_to_id(htm_ids.htm_id_to_name(htm_id)) == htm_id


class TestHierarchy:
    @given(valid_ids)
    def test_children_have_parent(self, htm_id):
        for child in htm_ids.child_ids(htm_id):
            assert htm_ids.parent_id(child) == htm_id
            assert htm_ids.htm_level(child) == htm_ids.htm_level(htm_id) + 1

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            htm_ids.parent_id(8)

    @given(valid_ids)
    def test_ancestor_at_own_level_is_identity(self, htm_id):
        level = htm_ids.htm_level(htm_id)
        assert htm_ids.ancestor_at_level(htm_id, level) == htm_id

    @given(valid_ids)
    def test_ancestor_deeper_level_rejected(self, htm_id):
        level = htm_ids.htm_level(htm_id)
        with pytest.raises(ValueError):
            htm_ids.ancestor_at_level(htm_id, level + 1)


class TestRanges:
    @given(valid_ids, st.integers(min_value=0, max_value=4))
    def test_descendant_range_size(self, htm_id, extra_levels):
        level = htm_ids.htm_level(htm_id) + extra_levels
        low, high = htm_ids.id_range_at_level(htm_id, level)
        assert high - low + 1 == 4**extra_levels
        assert htm_ids.ancestor_at_level(low, htm_ids.htm_level(htm_id)) == htm_id
        assert htm_ids.ancestor_at_level(high, htm_ids.htm_level(htm_id)) == htm_id

    @given(valid_ids)
    def test_child_ranges_partition_parent_range(self, htm_id):
        level = htm_ids.htm_level(htm_id) + 3
        parent_low, parent_high = htm_ids.id_range_at_level(htm_id, level)
        covered = []
        for child in htm_ids.child_ids(htm_id):
            covered.append(htm_ids.id_range_at_level(child, level))
        covered.sort()
        assert covered[0][0] == parent_low
        assert covered[-1][1] == parent_high
        for (low_a, high_a), (low_b, _high_b) in zip(covered, covered[1:]):
            assert low_b == high_a + 1

    def test_shallower_level_rejected(self):
        child = htm_ids.child_ids(8)[0]
        with pytest.raises(ValueError):
            htm_ids.id_range_at_level(child, 0)


class TestEnumeration:
    def test_count_at_level(self):
        assert htm_ids.count_at_level(0) == 8
        assert htm_ids.count_at_level(1) == 32
        assert htm_ids.count_at_level(3) == 8 * 64

    def test_iteration_matches_count(self):
        ids = list(htm_ids.iter_ids_at_level(2))
        assert len(ids) == htm_ids.count_at_level(2)
        assert all(htm_ids.htm_level(i) == 2 for i in ids)
        assert ids == sorted(ids)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            htm_ids.count_at_level(-1)
        with pytest.raises(ValueError):
            list(htm_ids.iter_ids_at_level(-2))

    def test_skyquery_level_ids_fit_in_32_bits(self):
        last_id = (16 << (2 * htm_ids.SKYQUERY_LEVEL)) - 1
        assert last_id.bit_length() <= 32
