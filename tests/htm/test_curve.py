"""Tests for HTM range arithmetic and cone covers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm import ids as htm_ids
from repro.htm.curve import (
    HTMRange,
    HTMRangeSet,
    bucket_boundaries,
    cone_cover,
    point_range,
    range_for_trixel,
    ranges_to_pairs,
)
from repro.htm.geometry import SkyPoint
from repro.htm.mesh import HTMMesh


def ranges(max_value=10_000):
    return st.tuples(
        st.integers(min_value=0, max_value=max_value),
        st.integers(min_value=0, max_value=max_value),
    ).map(lambda pair: HTMRange(min(pair), max(pair)))


class TestHTMRange:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            HTMRange(10, 5)

    def test_len_and_contains(self):
        r = HTMRange(10, 14)
        assert len(r) == 5
        assert 10 in r and 14 in r and 12 in r
        assert 9 not in r and 15 not in r

    @given(ranges(), ranges())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        intersection = a.intersect(b)
        assert (intersection is not None) == a.overlaps(b)

    @given(ranges(), ranges())
    def test_intersection_is_contained_in_both(self, a, b):
        overlap = a.intersect(b)
        if overlap is not None:
            assert overlap.low >= a.low and overlap.high <= a.high
            assert overlap.low >= b.low and overlap.high <= b.high

    def test_union_if_adjacent(self):
        assert HTMRange(0, 4).union_if_adjacent(HTMRange(5, 9)) == HTMRange(0, 9)
        assert HTMRange(0, 4).union_if_adjacent(HTMRange(6, 9)) is None


class TestHTMRangeSet:
    def test_normalisation_merges_overlaps_and_adjacency(self):
        cover = HTMRangeSet([HTMRange(5, 10), HTMRange(0, 4), HTMRange(8, 12), HTMRange(20, 25)])
        assert cover.ranges == (HTMRange(0, 12), HTMRange(20, 25))
        assert cover.id_count() == 13 + 6

    def test_membership_binary_search(self):
        cover = HTMRangeSet.from_pairs([(0, 10), (100, 110), (1000, 1010)])
        for value in (0, 10, 105, 1010):
            assert cover.contains_id(value)
        for value in (11, 99, 111, 999, 1011):
            assert not cover.contains_id(value)

    @given(st.lists(ranges(), max_size=10), st.lists(ranges(), max_size=10))
    @settings(max_examples=60)
    def test_union_and_intersection_membership(self, first, second):
        a, b = HTMRangeSet(first), HTMRangeSet(second)
        union = a.union(b)
        intersection = a.intersection(b)
        probes = {r.low for r in first} | {r.high for r in second} | {0, 1, 5000}
        for probe in probes:
            assert union.contains_id(probe) == (a.contains_id(probe) or b.contains_id(probe))
            assert intersection.contains_id(probe) == (
                a.contains_id(probe) and b.contains_id(probe)
            )

    @given(st.lists(ranges(), max_size=8), st.lists(ranges(), max_size=8))
    @settings(max_examples=60)
    def test_overlaps_consistent_with_intersection(self, first, second):
        a, b = HTMRangeSet(first), HTMRangeSet(second)
        assert a.overlaps(b) == bool(a.intersection(b))

    def test_clipping(self):
        cover = HTMRangeSet.from_pairs([(0, 10), (20, 30)])
        clipped = cover.clipped_to(HTMRange(5, 25))
        assert clipped.ranges == (HTMRange(5, 10), HTMRange(20, 25))

    def test_equality_and_repr(self):
        a = HTMRangeSet.from_pairs([(0, 5)])
        b = HTMRangeSet([HTMRange(0, 3), HTMRange(4, 5)])
        assert a == b
        assert "HTMRangeSet" in repr(a)


class TestConeCover:
    @pytest.fixture(scope="class")
    def mesh(self):
        return HTMMesh()

    def test_cover_contains_points_inside_cone(self, mesh):
        center = SkyPoint(120.0, 25.0)
        cover = cone_cover(center, 2.0, cover_level=6, leaf_level=14, mesh=mesh)
        assert cover
        for d_ra, d_dec in [(0.0, 0.0), (1.0, 0.5), (-0.5, -1.0)]:
            inside = SkyPoint(center.ra + d_ra, center.dec + d_dec)
            leaf = mesh.locate(inside, 14)
            assert cover.contains_id(leaf)

    def test_cover_excludes_far_away_points(self, mesh):
        cover = cone_cover(SkyPoint(120.0, 25.0), 1.0, cover_level=7, leaf_level=14, mesh=mesh)
        far = mesh.locate(SkyPoint(300.0, -25.0), 14)
        assert not cover.contains_id(far)

    def test_larger_radius_gives_larger_cover(self, mesh):
        small = cone_cover(SkyPoint(10.0, 10.0), 0.5, cover_level=7, mesh=mesh)
        large = cone_cover(SkyPoint(10.0, 10.0), 5.0, cover_level=7, mesh=mesh)
        assert large.id_count() >= small.id_count()

    def test_negative_radius_rejected(self, mesh):
        with pytest.raises(ValueError):
            cone_cover(SkyPoint(0.0, 0.0), -1.0, mesh=mesh)

    def test_cover_level_validation(self, mesh):
        with pytest.raises(ValueError):
            cone_cover(SkyPoint(0.0, 0.0), 1.0, cover_level=15, leaf_level=14, mesh=mesh)

    def test_point_range_contains_object_leaf(self, mesh):
        point = SkyPoint(200.0, -30.0)
        cover = point_range(point, 3.0 / 3600.0, mesh=mesh)
        assert cover.contains_id(mesh.locate(point, 14))


class TestBucketBoundaries:
    def test_boundaries_partition_the_curve(self):
        boundaries = bucket_boundaries(leaf_level=8, bucket_count=64)
        assert len(boundaries) == 64
        assert boundaries[0].low == 8 << 16
        assert boundaries[-1].high == (16 << 16) - 1
        for a, b in zip(boundaries, boundaries[1:]):
            assert b.low == a.high + 1

    def test_invalid_bucket_counts(self):
        with pytest.raises(ValueError):
            bucket_boundaries(leaf_level=2, bucket_count=0)
        with pytest.raises(ValueError):
            bucket_boundaries(leaf_level=0, bucket_count=1000)

    def test_range_for_trixel_matches_id_range(self):
        low, high = htm_ids.id_range_at_level(9, 14)
        assert range_for_trixel(9, 14) == HTMRange(low, high)

    def test_ranges_to_pairs(self):
        assert ranges_to_pairs([HTMRange(1, 2), HTMRange(5, 9)]) == [(1, 2), (5, 9)]
