"""Tests for the hierarchical triangular mesh."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm import ids as htm_ids
from repro.htm.geometry import SkyPoint, radec_from_vector
from repro.htm.mesh import HTMMesh, htm_id_for

ras = st.floats(min_value=0.0, max_value=359.99)
decs = st.floats(min_value=-89.9, max_value=89.9)


@pytest.fixture(scope="module")
def mesh():
    return HTMMesh()


class TestRootFaces:
    def test_there_are_eight_roots(self, mesh):
        roots = mesh.root_trixels()
        assert len(roots) == 8
        assert sorted(t.htm_id for t in roots) == list(range(8, 16))

    def test_root_areas_cover_the_sphere(self, mesh):
        total = sum(t.area_steradians() for t in mesh.root_trixels())
        assert total == pytest.approx(4.0 * math.pi, rel=1e-9)

    def test_every_point_is_in_exactly_one_root(self, mesh):
        point = SkyPoint(123.0, 45.0)
        containing = [t for t in mesh.root_trixels() if t.contains(point)]
        assert len(containing) >= 1


class TestLocate:
    @given(ras, decs, st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_located_id_has_requested_level(self, ra, dec, level):
        mesh = HTMMesh()
        htm_id = mesh.locate(SkyPoint(ra, dec), level)
        assert htm_ids.htm_level(htm_id) == level

    @given(ras, decs)
    @settings(max_examples=40, deadline=None)
    def test_located_trixel_contains_point(self, ra, dec):
        mesh = HTMMesh()
        point = SkyPoint(ra, dec)
        htm_id = mesh.locate(point, 8)
        trixel = mesh.trixel(htm_id)
        axis, radius = trixel.circumcircle()
        axis_ra, axis_dec = radec_from_vector(axis)
        # The point must fall inside the trixel's bounding cone.
        assert point.separation(SkyPoint(axis_ra, axis_dec)) <= radius + 1e-6

    @given(ras, decs)
    @settings(max_examples=40, deadline=None)
    def test_deeper_ids_refine_shallower_ids(self, ra, dec):
        mesh = HTMMesh()
        point = SkyPoint(ra, dec)
        shallow = mesh.locate(point, 5)
        deep = mesh.locate(point, 9)
        assert htm_ids.ancestor_at_level(deep, 5) == shallow

    def test_negative_level_rejected(self, mesh):
        with pytest.raises(ValueError):
            mesh.locate(SkyPoint(0.0, 0.0), -1)

    def test_nearby_points_share_prefix(self, mesh):
        a = mesh.locate(SkyPoint(150.0, 30.0), 14)
        b = mesh.locate(SkyPoint(150.0001, 30.0001), 14)
        # Spatial locality: very close points agree at a coarse level.
        assert htm_ids.ancestor_at_level(a, 6) == htm_ids.ancestor_at_level(b, 6)

    def test_module_level_helper(self):
        assert htm_ids.htm_level(htm_id_for(10.0, 10.0, level=7)) == 7


class TestTrixels:
    def test_children_partition_parent_area(self, mesh):
        parent = mesh.trixel(9)
        child_area = sum(c.area_steradians() for c in parent.children())
        assert child_area == pytest.approx(parent.area_steradians(), rel=1e-6)

    def test_trixel_lookup_matches_children(self, mesh):
        parent = mesh.trixel(12)
        for child in parent.children():
            looked_up = mesh.trixel(child.htm_id)
            for corner_a, corner_b in zip(looked_up.corners, child.corners):
                assert corner_a == pytest.approx(corner_b)

    def test_trixels_at_level_enumeration(self, mesh):
        level2 = list(mesh.trixels_at_level(2))
        assert len(level2) == htm_ids.count_at_level(2)
        total_area = sum(t.area_steradians() for t in level2)
        assert total_area == pytest.approx(4.0 * math.pi, rel=1e-6)

    def test_trixel_name_property(self, mesh):
        assert mesh.trixel(8).name == "S0"
        assert mesh.trixel(htm_ids.child_ids(15)[2]).name == "N32"
