"""Unit and property tests for spherical geometry primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm.geometry import (
    SkyPoint,
    angular_separation,
    bounding_cap_of_points,
    cone_contains,
    cross,
    dot,
    midpoint,
    normalize,
    radec_from_vector,
    spherical_triangle_area,
    triangle_circumcircle,
    triangle_contains,
    unit_vector,
)

ras = st.floats(min_value=0.0, max_value=359.999)
decs = st.floats(min_value=-89.0, max_value=89.0)


class TestSkyPoint:
    def test_ra_is_normalised_into_range(self):
        assert SkyPoint(370.0, 10.0).ra == pytest.approx(10.0)
        assert SkyPoint(-30.0, 10.0).ra == pytest.approx(330.0)

    def test_invalid_declination_rejected(self):
        with pytest.raises(ValueError):
            SkyPoint(10.0, 91.0)
        with pytest.raises(ValueError):
            SkyPoint(10.0, -90.5)

    def test_separation_is_zero_to_self(self):
        point = SkyPoint(123.4, -21.0)
        assert point.separation(point) == pytest.approx(0.0, abs=1e-9)

    def test_separation_between_poles_is_180(self):
        north = SkyPoint(0.0, 90.0)
        south = SkyPoint(0.0, -90.0)
        assert north.separation(south) == pytest.approx(180.0)


class TestUnitVector:
    def test_reference_directions(self):
        assert unit_vector(0.0, 0.0) == pytest.approx((1.0, 0.0, 0.0))
        assert unit_vector(90.0, 0.0) == pytest.approx((0.0, 1.0, 0.0))
        assert unit_vector(0.0, 90.0) == pytest.approx((0.0, 0.0, 1.0))

    @given(ras, decs)
    def test_vectors_have_unit_length(self, ra, dec):
        x, y, z = unit_vector(ra, dec)
        assert math.sqrt(x * x + y * y + z * z) == pytest.approx(1.0, abs=1e-12)

    @given(ras, decs)
    def test_roundtrip_through_vector(self, ra, dec):
        back_ra, back_dec = radec_from_vector(unit_vector(ra, dec))
        assert back_dec == pytest.approx(dec, abs=1e-8)
        # RA is undefined at the poles; compare via separation instead.
        assert angular_separation(ra, dec, back_ra, back_dec) == pytest.approx(0.0, abs=1e-8)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            radec_from_vector((0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            normalize((0.0, 0.0, 0.0))


class TestAngularSeparation:
    def test_known_separation_along_equator(self):
        assert angular_separation(10.0, 0.0, 35.0, 0.0) == pytest.approx(25.0)

    def test_small_separation_precision(self):
        # One arcsecond apart in declination.
        sep = angular_separation(100.0, 20.0, 100.0, 20.0 + 1.0 / 3600.0)
        assert sep * 3600.0 == pytest.approx(1.0, rel=1e-6)

    @given(ras, decs, ras, decs)
    def test_symmetry_and_bounds(self, ra1, dec1, ra2, dec2):
        forward = angular_separation(ra1, dec1, ra2, dec2)
        backward = angular_separation(ra2, dec2, ra1, dec1)
        assert forward == pytest.approx(backward, abs=1e-9)
        assert 0.0 <= forward <= 180.0 + 1e-9

    @given(ras, decs, ras, decs, ras, decs)
    @settings(max_examples=50)
    def test_triangle_inequality(self, ra1, dec1, ra2, dec2, ra3, dec3):
        ab = angular_separation(ra1, dec1, ra2, dec2)
        bc = angular_separation(ra2, dec2, ra3, dec3)
        ac = angular_separation(ra1, dec1, ra3, dec3)
        assert ac <= ab + bc + 1e-7


class TestConeContains:
    def test_center_always_contained(self):
        center = SkyPoint(45.0, 45.0)
        assert cone_contains(center, 0.0, center)

    def test_point_outside_radius(self):
        center = SkyPoint(45.0, 45.0)
        outside = SkyPoint(55.0, 45.0)
        assert not cone_contains(center, 1.0, outside)
        assert cone_contains(center, 10.0, outside)


class TestTriangleGeometry:
    def _octant(self):
        return (unit_vector(0, 0), unit_vector(90, 0), unit_vector(0, 90))

    def test_triangle_contains_interior_point(self):
        corners = self._octant()
        assert triangle_contains(corners, unit_vector(45.0, 30.0))

    def test_triangle_excludes_opposite_point(self):
        corners = self._octant()
        assert not triangle_contains(corners, unit_vector(225.0, -45.0))

    def test_octant_area_is_one_eighth_of_sphere(self):
        area = spherical_triangle_area(self._octant())
        assert area == pytest.approx(4.0 * math.pi / 8.0, rel=1e-9)

    def test_circumcircle_covers_corners(self):
        corners = self._octant()
        axis, radius = triangle_circumcircle(corners)
        for corner in corners:
            separation = math.degrees(math.acos(max(-1.0, min(1.0, dot(axis, corner)))))
            assert separation <= radius + 1e-9

    def test_midpoint_is_unit_and_between(self):
        a, b = unit_vector(0, 0), unit_vector(90, 0)
        m = midpoint(a, b)
        assert math.sqrt(dot(m, m)) == pytest.approx(1.0)
        ra, dec = radec_from_vector(m)
        assert ra == pytest.approx(45.0)
        assert dec == pytest.approx(0.0, abs=1e-9)

    def test_cross_product_orthogonality(self):
        a, b = unit_vector(10, 20), unit_vector(80, -30)
        c = cross(a, b)
        assert dot(a, c) == pytest.approx(0.0, abs=1e-12)
        assert dot(b, c) == pytest.approx(0.0, abs=1e-12)


class TestBoundingCap:
    def test_single_point_cap_has_zero_radius(self):
        center, radius = bounding_cap_of_points([SkyPoint(10.0, 10.0)])
        assert radius == pytest.approx(0.0, abs=1e-9)
        assert center.separation(SkyPoint(10.0, 10.0)) == pytest.approx(0.0, abs=1e-9)

    def test_cap_covers_all_points(self):
        points = [SkyPoint(10.0, 0.0), SkyPoint(12.0, 1.0), SkyPoint(11.0, -2.0)]
        center, radius = bounding_cap_of_points(points)
        for point in points:
            assert center.separation(point) <= radius + 1e-9

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            bounding_cap_of_points([])
