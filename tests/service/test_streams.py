"""Tests for incremental result streams and the stream hub."""

import pytest

from repro.service.streams import ResultStream, StreamHub


class TestResultStream:
    def test_chunks_accumulate_progress_to_final(self):
        stream = ResultStream(7, needed_buckets=(3, 5, 9), arrival_ms=100.0)
        first = stream.emit(5, objects=40, time_ms=250.0)
        assert first.seq == 0 and first.bucket_index == 5
        assert first.progress == pytest.approx(1 / 3)
        assert not first.final
        second = stream.emit(3, objects=10, time_ms=400.0)
        assert second.progress == pytest.approx(2 / 3)
        final = stream.emit(9, objects=5, time_ms=900.0)
        assert final.final and final.progress == pytest.approx(1.0)
        assert stream.is_complete
        assert stream.objects_matched == 55

    def test_latency_properties_are_client_perceived(self):
        stream = ResultStream(1, needed_buckets=(0, 1), arrival_ms=1_000.0)
        assert stream.time_to_first_result_ms is None
        assert stream.time_to_completion_ms is None
        stream.emit(0, objects=1, time_ms=1_500.0)
        assert stream.time_to_first_result_ms == pytest.approx(500.0)
        assert stream.time_to_completion_ms is None
        stream.emit(1, objects=1, time_ms=4_000.0)
        assert stream.time_to_completion_ms == pytest.approx(3_000.0)

    def test_unneeded_bucket_emits_nothing(self):
        stream = ResultStream(1, needed_buckets=(0,), arrival_ms=0.0)
        assert stream.emit(42, objects=9, time_ms=10.0) is None
        chunk = stream.emit(0, objects=1, time_ms=20.0)
        assert chunk.final
        # A second drain of the same bucket is idempotent for the stream.
        assert stream.emit(0, objects=1, time_ms=30.0) is None
        assert len(stream.chunks) == 1

    def test_empty_bucket_set_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            ResultStream(1, needed_buckets=(), arrival_ms=0.0)


class _Record:
    """Minimal BatchRecord-shaped object for hub ingestion tests."""

    def __init__(self, worker_id, seq, bucket, served, objects, start, finish):
        self.worker_id = worker_id
        self.seq = seq
        self.bucket_index = bucket
        self.queries_served = served
        self.objects_served = objects
        self.started_at_ms = start
        self.finished_at_ms = finish


class TestStreamHub:
    def test_fan_out_to_multiple_streams(self):
        hub = StreamHub()
        hub.register(1, (10, 11), arrival_ms=0.0)
        hub.register(2, (10,), arrival_ms=5.0)
        chunks = hub.on_service(10, (1, 2), (30, 40), time_ms=100.0)
        assert [c.query_id for c in chunks] == [1, 2]
        assert chunks[0].objects_matched == 30 and chunks[1].objects_matched == 40
        assert not chunks[0].final and chunks[1].final
        assert hub.completed_queries() == [2]
        assert hub.total_chunks == 2

    def test_unregistered_query_is_ignored(self):
        hub = StreamHub()
        hub.register(1, (10,), arrival_ms=0.0)
        chunks = hub.on_service(10, (1, 99), (5, 5), time_ms=50.0)
        assert [c.query_id for c in chunks] == [1]

    def test_duplicate_registration_rejected(self):
        hub = StreamHub()
        hub.register(1, (0,), arrival_ms=0.0)
        with pytest.raises(ValueError, match="already has a result stream"):
            hub.register(1, (1,), arrival_ms=0.0)

    def test_subscribers_see_chunks_in_emission_order(self):
        hub = StreamHub()
        seen = []
        hub.subscribe(seen.append)
        hub.register(1, (0, 1), arrival_ms=0.0)
        hub.on_service(0, (1,), (2,), time_ms=10.0)
        hub.on_service(1, (1,), (3,), time_ms=20.0)
        assert [(c.bucket_index, c.time_ms) for c in seen] == [(0, 10.0), (1, 20.0)]

    def test_ingest_records_orders_by_finish_time(self):
        """Overlapping services of different workers must stream per-query
        chunks in non-decreasing virtual time (finish order, not start)."""
        hub = StreamHub()
        hub.register(1, (0, 1), arrival_ms=0.0)
        records = [
            # Worker 0 starts first but finishes last.
            _Record(0, 0, 0, (1,), (5,), start=10.0, finish=100.0),
            _Record(1, 0, 1, (1,), (7,), start=20.0, finish=30.0),
        ]
        hub.ingest_records(records)
        times = [chunk.time_ms for chunk in hub.stream(1).chunks]
        assert times == [30.0, 100.0]
        assert hub.stream(1).chunks[0].bucket_index == 1

    def test_latency_summaries(self):
        hub = StreamHub()
        hub.register(1, (0,), arrival_ms=1_000.0)
        hub.register(2, (1,), arrival_ms=1_000.0)
        hub.on_service(0, (1,), (1,), time_ms=2_000.0)
        assert hub.time_to_first_result_s() == [1.0]
        assert hub.time_to_completion_s() == [1.0]
        # Query 2 never streamed: it contributes to neither summary.
        assert len(hub.time_to_first_result_s()) == 1


class TestStreamCursor:
    """Exactly-once chunk resume across a service restart."""

    def _fed_hub(self, records):
        hub = StreamHub()
        hub.register(1, [0, 1, 2], arrival_ms=0.0)
        hub.register(2, [1, 3], arrival_ms=50.0)
        hub.ingest_records(records)
        return hub

    def _records(self):
        return [
            _Record(0, 0, 0, (1,), (10,), 90.0, 100.0),
            _Record(0, 1, 1, (1, 2), (5, 7), 190.0, 200.0),
            _Record(0, 2, 2, (1,), (3,), 290.0, 300.0),
            _Record(0, 3, 3, (2,), (4,), 390.0, 400.0),
        ]

    def test_cursor_round_trip_resumes_exactly_once(self):
        records = self._records()
        # Original hub sees the first half, then "crashes".
        original = self._fed_hub(records[:2])
        cursor = original.cursor()
        assert cursor.total_chunks == 3

        # A rebuilt hub restores the cursor silently, then ingests the
        # tail — including a replayed record, which must be a no-op.
        seen = []
        restored = StreamHub()
        restored.register(1, [0, 1, 2], arrival_ms=0.0)
        restored.register(2, [1, 3], arrival_ms=50.0)
        restored.subscribe(seen.append)
        restored.restore(cursor)
        assert seen == []  # replay never re-notifies subscribers
        restored.ingest_records(records)  # full stream: head is replayed

        reference = self._fed_hub(records)
        for query_id in (1, 2):
            assert [
                (c.seq, c.bucket_index, c.objects_matched, c.time_ms, c.final)
                for c in restored.stream(query_id).chunks
            ] == [
                (c.seq, c.bucket_index, c.objects_matched, c.time_ms, c.final)
                for c in reference.stream(query_id).chunks
            ]
        assert restored.total_chunks == reference.total_chunks
        # Only the tail's chunks reached subscribers, in ingestion order.
        assert [(c.query_id, c.seq) for c in seen] == [(1, 2), (2, 1)]

    def test_restore_requires_registered_streams(self):
        original = self._fed_hub(self._records()[:1])
        cursor = original.cursor()
        empty = StreamHub()
        with pytest.raises(ValueError, match="no registered stream"):
            empty.restore(cursor)

    def test_restore_requires_fresh_streams(self):
        records = self._records()
        original = self._fed_hub(records[:2])
        cursor = original.cursor()
        dirty = self._fed_hub(records[:1])
        with pytest.raises(ValueError, match="fresh streams"):
            dirty.restore(cursor)

    def test_frontend_delegates_cursor(self):
        from repro.core.metrics import CostModel
        from repro.service.frontend import ServiceConfig, ServingFrontEnd
        from repro.storage.partitioner import BucketPartitioner
        from repro.workload.generator import TraceConfig, TraceGenerator

        layout = BucketPartitioner().partition_density(32)
        trace = TraceGenerator(TraceConfig(query_count=6, bucket_count=32, seed=4)).generate()
        first = ServingFrontEnd(ServiceConfig(), layout, CostModel.paper_defaults())
        first.admit(trace.queries)
        cursor = first.cursor()
        assert cursor.total_chunks == 0

        second = ServingFrontEnd(ServiceConfig(), layout, CostModel.paper_defaults())
        second.admit(trace.queries)
        second.restore_cursor(cursor)
        assert second.hub.total_chunks == 0
