"""Tests for admission control, client sessions and deadline classes."""

import pytest

from repro.core.metrics import CostModel
from repro.service.admission import (
    AdmissionDecision,
    AdmissionLimits,
    AdmitAll,
    DeferPolicy,
    IntakeModel,
    IntakeSnapshot,
    RejectPolicy,
    make_admission_policy,
)
from repro.service.deadline import (
    DEADLINE_CLASSES,
    DeadlineTracker,
    assign_deadline_class,
    parse_deadline_mix,
)
from repro.service.sessions import SessionRegistry
from repro.workload.query import CrossMatchQuery


def snapshot(queue_depth=0, pending_buckets=0, client_rate_qps=0.0, now_ms=0.0):
    return IntakeSnapshot(
        now_ms=now_ms,
        queue_depth=queue_depth,
        pending_buckets=pending_buckets,
        client_rate_qps=client_rate_qps,
    )


class TestLimits:
    def test_breached_names_every_exceeded_limit(self):
        limits = AdmissionLimits(intake_bound=4, max_pending_buckets=10, max_client_qps=1.0)
        state = snapshot(queue_depth=4, pending_buckets=10, client_rate_qps=2.0)
        assert state.breached(limits) == [
            "intake_bound",
            "max_pending_buckets",
            "max_client_qps",
        ]
        assert snapshot(queue_depth=3, pending_buckets=9, client_rate_qps=1.0).breached(
            limits
        ) == []

    def test_unset_limits_never_breach(self):
        assert snapshot(queue_depth=10**6, pending_buckets=10**6).breached(
            AdmissionLimits()
        ) == []

    def test_non_positive_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionLimits(intake_bound=0)
        with pytest.raises(ValueError):
            AdmissionLimits(max_pending_buckets=-1)
        with pytest.raises(ValueError):
            AdmissionLimits(max_client_qps=0.0)


class TestPolicies:
    def test_admit_all_ignores_breaches(self):
        limits = AdmissionLimits(intake_bound=1)
        assert (
            AdmitAll().decide(snapshot(queue_depth=100), limits) is AdmissionDecision.ADMIT
        )

    def test_reject_and_defer_on_breach(self):
        limits = AdmissionLimits(intake_bound=2)
        breached = snapshot(queue_depth=2)
        clear = snapshot(queue_depth=1)
        assert RejectPolicy().decide(breached, limits) is AdmissionDecision.REJECT
        assert RejectPolicy().decide(clear, limits) is AdmissionDecision.ADMIT
        assert DeferPolicy().decide(breached, limits) is AdmissionDecision.DEFER
        assert DeferPolicy().decide(clear, limits) is AdmissionDecision.ADMIT

    def test_registry_round_trip_and_unknown_name(self):
        assert make_admission_policy("reject").name == "reject"
        policy = DeferPolicy()
        assert make_admission_policy(policy) is policy
        with pytest.raises(ValueError, match="unknown admission policy"):
            make_admission_policy("coin_flip")


class TestIntakeModel:
    def test_estimates_follow_the_cost_model(self):
        cost = CostModel(tb_ms=1_000.0, tm_ms=1.0)
        model = IntakeModel(cost)
        # Two buckets, 300 objects: 2 * Tb + 300 * Tm.
        assert model.estimate_cost_ms({1: 100, 2: 200}) == pytest.approx(2_300.0)

    def test_in_flight_work_retires_at_estimated_drain(self):
        cost = CostModel(tb_ms=1_000.0, tm_ms=1.0)
        model = IntakeModel(cost)
        model.admit(1, {5: 100}, now_ms=0.0)  # drains at 1_100
        state = model.snapshot(500.0, client_rate_qps=0.0)
        assert state.queue_depth == 1 and state.pending_buckets == 1
        state = model.snapshot(1_200.0, client_rate_qps=0.0)
        assert state.queue_depth == 0 and state.pending_buckets == 0

    def test_admissions_queue_behind_each_other(self):
        cost = CostModel(tb_ms=1_000.0, tm_ms=1.0)
        model = IntakeModel(cost)
        first_drain = model.admit(1, {5: 100}, now_ms=0.0)
        second_drain = model.admit(2, {6: 100}, now_ms=0.0)
        assert second_drain == pytest.approx(first_drain + 1_100.0)
        # Both still in flight after the first estimate alone would drain.
        state = model.snapshot(first_drain + 1.0, client_rate_qps=0.0)
        assert state.queue_depth == 1

    def test_bucket_backlog_counts_distinct_buckets(self):
        cost = CostModel(tb_ms=1_000.0, tm_ms=1.0)
        model = IntakeModel(cost)
        model.admit(1, {5: 10, 6: 10}, now_ms=0.0)
        model.admit(2, {6: 10, 7: 10}, now_ms=0.0)
        state = model.snapshot(0.0, client_rate_qps=0.0)
        assert state.pending_buckets == 3


class TestSessions:
    def query(self, query_id, arrival_s=0.0):
        return CrossMatchQuery(
            query_id=query_id, bucket_footprint={0: 1}, arrival_time_s=arrival_s
        )

    def test_queries_hash_onto_the_client_pool(self):
        registry = SessionRegistry(clients=3)
        assert registry.client_of(self.query(0)) == 0
        assert registry.client_of(self.query(4)) == 1
        assert registry.session_for(self.query(4)).client_id == 1

    def test_offered_rate_uses_a_sliding_window(self):
        registry = SessionRegistry(clients=1, window_ms=10_000.0)
        session = registry.session(0)
        for t in (0.0, 1_000.0, 2_000.0):
            session.observe_offer(t)
        assert session.offered == 3
        assert session.offered_rate_qps(2_000.0) == pytest.approx(3 / 10.0)
        # Two offers age out of the window.
        assert session.offered_rate_qps(11_500.0) == pytest.approx(1 / 10.0)
        assert session.offered_rate_qps(60_000.0) == 0.0

    def test_totals_aggregate_over_sessions(self):
        registry = SessionRegistry(clients=2)
        registry.session(0).observe_offer(0.0)
        registry.session(1).observe_offer(0.0)
        registry.session(0).admitted += 1
        registry.session(1).rejected += 1
        assert registry.totals() == {
            "offered": 2,
            "admitted": 1,
            "deferred": 0,
            "rejected": 1,
        }
        assert [s.client_id for s in registry.sessions()] == [0, 1]

    def test_invalid_pool_size_rejected(self):
        with pytest.raises(ValueError):
            SessionRegistry(clients=0)


class TestDeadlines:
    def test_mix_parsing_normalises_weights(self):
        mix = parse_deadline_mix("interactive=1, standard=3")
        assert mix == {"interactive": 0.25, "standard": 0.75}

    def test_mix_parsing_rejects_unknown_and_empty(self):
        with pytest.raises(ValueError, match="unknown deadline class"):
            parse_deadline_mix("warp_speed=1")
        with pytest.raises(ValueError, match="selects no classes"):
            parse_deadline_mix("")
        with pytest.raises(ValueError, match="bad weight"):
            parse_deadline_mix("batch=lots")

    def test_assignment_is_deterministic_and_respects_certainty(self):
        mix = {"interactive": 0.5, "batch": 0.5}
        first = [assign_deadline_class(qid, mix, seed=7) for qid in range(50)]
        second = [assign_deadline_class(qid, mix, seed=7) for qid in range(50)]
        assert first == second
        assert set(first) <= set(mix)
        # A single-class mix always assigns that class.
        assert all(
            assign_deadline_class(qid, {"batch": 1.0}, seed=7) == "batch"
            for qid in range(20)
        )

    def test_tracker_scores_first_result_and_completion(self):
        tracker = DeadlineTracker()
        tracker.assign(1, "interactive")
        tracker.assign(2, "interactive")
        tracker.assign(3, "batch")
        tracker.on_admitted(1)
        tracker.on_admitted(2)
        tracker.on_rejected(3)
        limit = DEADLINE_CLASSES["interactive"]
        tracker.on_completed(1, ttfr_s=limit.first_result_s - 1.0, ttc_s=1.0)
        tracker.on_completed(2, ttfr_s=limit.first_result_s + 1.0, ttc_s=1.0)
        rows = {row[0]: row for row in tracker.rows()}
        assert rows["interactive"][1:4] == (2, 0, 2)
        assert rows["interactive"][4] == pytest.approx(0.5)  # first-result SLA
        assert rows["interactive"][5] == pytest.approx(1.0)  # completion SLA
        assert rows["batch"][2] == 1  # rejected
        summary = tracker.summary()
        assert summary["completed"] == 2.0
        assert summary["first_result_hit_rate"] == pytest.approx(0.5)

    def test_tracker_summary_is_zero_safe(self):
        tracker = DeadlineTracker()
        assert tracker.summary() == {
            "completed": 0.0,
            "first_result_hit_rate": 0.0,
            "completion_hit_rate": 0.0,
        }
        with pytest.raises(ValueError, match="unknown deadline class"):
            tracker.assign(1, "warp_speed")
