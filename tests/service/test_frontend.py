"""Tests for the serving front-end: intake, backpressure, reports."""

import pytest

from repro.experiments.common import build_simulator, build_trace
from repro.service.frontend import ServiceConfig, ServingFrontEnd
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationResult
from repro.sim.stats import summarize_response_times

BUCKETS = 128


@pytest.fixture(scope="module")
def trace():
    return build_trace("small", query_count=60, bucket_count=BUCKETS)


@pytest.fixture(scope="module")
def queries(trace):
    return tuple(trace.with_saturation(2.0).queries)


@pytest.fixture(scope="module")
def simulator():
    return build_simulator("small", bucket_count=BUCKETS)


def frontend(simulator, **kwargs):
    config = ServiceConfig(**kwargs)
    return ServingFrontEnd(config, simulator.layout, simulator.config.cost)


class TestIntake:
    def test_admit_all_passes_everything_at_arrival_time(self, simulator, queries):
        front = frontend(simulator)
        outcome = front.admit(queries)
        assert outcome.rejected == [] and outcome.deferrals == 0
        assert outcome.offered == len(outcome.admitted)
        for admission in outcome.admitted:
            assert admission.submit_ms == admission.arrival_ms
            assert admission.defers == 0
        # The admitted schedule replays the original arrival times.
        replayed = outcome.admitted_queries()
        assert [q.query_id for q in replayed] == [a.query.query_id for a in outcome.admitted]

    def test_intake_runs_once(self, simulator, queries):
        front = frontend(simulator)
        front.admit(queries)
        with pytest.raises(RuntimeError, match="already run"):
            front.admit(queries)
        with pytest.raises(RuntimeError, match="intake pass"):
            frontend(simulator).report()

    def test_reject_policy_sheds_excess_load(self, simulator, queries):
        front = frontend(simulator, admission="reject", intake_bound=4)
        outcome = front.admit(queries)
        assert outcome.rejected, "a saturated trace must trip a 4-deep intake bound"
        assert outcome.deferrals == 0
        assert outcome.offered == len(queries)
        for rejection in outcome.rejected:
            assert "intake_bound" in rejection.reason

    def test_defer_policy_retries_then_admits_or_rejects(self, simulator, queries):
        front = frontend(
            simulator,
            admission="defer",
            intake_bound=4,
            defer_delay_ms=30_000.0,
            max_defers=6,
        )
        outcome = front.admit(queries)
        assert outcome.deferrals > 0
        deferred_admissions = [a for a in outcome.admitted if a.defers > 0]
        assert deferred_admissions, "backpressure must eventually admit some retries"
        for admission in deferred_admissions:
            assert admission.submit_ms > admission.arrival_ms
        for rejection in outcome.rejected:
            assert rejection.defers == 6, "rejects only after the retry budget"

    def test_per_client_rate_limit(self, simulator, queries):
        front = frontend(simulator, admission="reject", max_client_qps=0.01, clients=2)
        outcome = front.admit(queries)
        assert outcome.rejected
        assert all("max_client_qps" in r.reason for r in outcome.rejected)
        totals = front.sessions.totals()
        assert totals["offered"] == outcome.offered
        assert totals["rejected"] == len(outcome.rejected)

    def test_admission_is_deterministic(self, simulator, queries):
        def admitted_ids(**kwargs):
            outcome = frontend(simulator, **kwargs).admit(queries)
            return [(a.query.query_id, a.submit_ms) for a in outcome.admitted]

        kwargs = dict(admission="reject", intake_bound=6, max_pending_buckets=40)
        assert admitted_ids(**kwargs) == admitted_ids(**kwargs)


class TestServingRuns:
    def test_default_serving_matches_plain_run(self, simulator, queries):
        plain = simulator.execute(queries, RunSpec(alpha=0.25))
        served = simulator.execute(queries, RunSpec(alpha=0.25, service=ServiceConfig()))
        assert served.serving is not None
        assert served.completed_queries == plain.completed_queries
        assert served.serving.completed == plain.completed_queries
        assert served.serving.rejection_rate == 0.0
        # Client-perceived completion equals the engine's response time
        # when nothing is deferred.
        assert served.serving.avg_time_to_completion_s == pytest.approx(
            plain.avg_response_time_s, rel=1e-12
        )
        # First results strictly precede full answers on multi-bucket queries.
        assert (
            served.serving.avg_time_to_first_result_s
            < served.serving.avg_time_to_completion_s
        )
        assert served.serving.chunks >= served.serving.completed

    def test_streams_complete_exactly_the_admitted_queries(self, simulator, queries):
        config = ServiceConfig(admission="reject", intake_bound=8)
        served = simulator.execute(queries, RunSpec(alpha=0.25, service=config))
        serving = served.serving
        assert serving.admitted + serving.rejected == serving.offered
        assert serving.completed == serving.admitted == served.completed_queries
        assert 0.0 < serving.rejection_rate < 1.0

    def test_deadline_rows_cover_all_offers(self, simulator, queries):
        config = ServiceConfig(admission="reject", intake_bound=8)
        served = simulator.execute(queries, RunSpec(alpha=0.25, service=config))
        rows = served.serving.deadline_rows
        admitted = sum(row[1] for row in rows)
        rejected = sum(row[2] for row in rows)
        assert admitted == served.serving.admitted
        assert rejected == served.serving.rejected
        for _name, _adm, _rej, completed, first_sla, completion_sla in rows:
            assert 0.0 <= first_sla <= 1.0 and 0.0 <= completion_sla <= 1.0
            assert completed >= 0

    def test_chunk_callback_fires_live(self, simulator, queries):
        seen = []
        config = ServiceConfig(on_chunk=seen.append)
        served = simulator.execute(queries, RunSpec(alpha=0.25, service=config))
        assert len(seen) == served.serving.chunks
        times = [chunk.time_ms for chunk in seen]
        assert times == sorted(times)


class TestZeroCompletedRuns:
    """Aggressive admission control can legitimately complete zero
    queries; every derived statistic must stay finite (regression for the
    zero-completed guards)."""

    @pytest.fixture(scope="class")
    def zero_run(self, simulator, queries):
        config = ServiceConfig(admission="reject", max_client_qps=1e-9)
        return simulator.execute(queries, RunSpec(alpha=0.25, service=config))

    def test_everything_is_rejected(self, zero_run):
        serving = zero_run.serving
        assert serving.admitted == 0
        assert serving.completed == 0
        assert serving.rejection_rate == 1.0

    def test_simulation_result_statistics_are_zero_safe(self, zero_run):
        assert zero_run.completed_queries == 0
        assert zero_run.avg_response_time_s == 0.0
        assert zero_run.response_time_cov == 0.0
        assert zero_run.throughput_qps == 0.0
        row = zero_run.to_row()
        assert row["avg_response_s"] == 0.0 and row["response_cov"] == 0.0

    def test_serving_report_statistics_are_zero_safe(self, zero_run):
        serving = zero_run.serving
        assert serving.avg_time_to_first_result_s == 0.0
        assert serving.avg_time_to_completion_s == 0.0
        assert serving.ttfr_stats.count == 0
        assert serving.deadline_summary["first_result_hit_rate"] == 0.0

    def test_empty_simulation_result_construction(self):
        """A hand-built zero-completed result (what a fully shed parallel
        run produces) exposes no division by zero anywhere."""
        result = SimulationResult(
            policy_name="liferaft",
            alpha=0.25,
            submitted_queries=0,
            completed_queries=0,
            makespan_s=0.0,
            busy_time_s=0.0,
            throughput_qps=0.0,
            response_stats=summarize_response_times([]),
            cache_hit_rate=0.0,
            bucket_services=0,
            bucket_reads=0,
            strategy_counts={},
            total_io_s=0.0,
            total_match_s=0.0,
        )
        assert result.avg_response_time_s == 0.0
        assert result.response_time_cov == 0.0

    def test_empty_report_rejection_rate(self, simulator):
        """Serving an empty trace offers nothing and rejects nothing."""
        served = simulator.execute((), RunSpec(alpha=0.25, service=ServiceConfig()))
        serving = served.serving
        assert serving.offered == 0
        assert serving.rejection_rate == 0.0
        assert serving.chunks == 0
