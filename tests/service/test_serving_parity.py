"""Cross-backend serving parity: identical chunk streams everywhere.

The serving layer promises that *where* a query executes changes nothing
a client observes.  This harness replays one seeded open-system trace
through the serving front-end on the serial engine, the virtual backend
and the process backend and asserts:

* with stealing disabled, the virtual and process backends produce
  **identical per-query chunk sequences** — bucket ids, progress
  fractions and virtual timestamps — for workers in {1, 2, 4}, and at
  one worker both match the serial engine exactly;
* with stealing enabled, all backends complete the **same final set** of
  queries with full streams;
* chunks of one query arrive in **non-decreasing virtual time** on every
  backend, stealing on or off (the stream-ordering satellite).
"""

import pytest

from repro.experiments.common import build_simulator, build_trace
from repro.service.frontend import ServiceConfig
from repro.sim.runspec import RunSpec

BUCKETS = 64
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def queries():
    trace = build_trace("small", query_count=50, bucket_count=BUCKETS, seed=21)
    return tuple(trace.with_saturation(3.0).queries)


@pytest.fixture(scope="module")
def simulator():
    return build_simulator("small", bucket_count=BUCKETS)


def serve_serial(simulator, queries, **config_kwargs):
    return simulator.execute(
        queries, RunSpec(alpha=0.25, service=ServiceConfig(**config_kwargs))
    )


def serve_parallel(simulator, queries, backend, workers, stealing, **config_kwargs):
    return simulator.execute(
        queries,
        RunSpec(
            alpha=0.25,
            workers=workers,
            backend=backend,
            enable_stealing=stealing,
            service=ServiceConfig(**config_kwargs),
        ),
    )


def signature(chunks_by_query):
    """Round timestamps so float noise cannot fail an exact comparison."""
    return {
        query_id: tuple(
            (c.bucket_index, round(c.progress, 9), round(c.time_ms, 6)) for c in chunks
        )
        for query_id, chunks in chunks_by_query.items()
    }


@pytest.fixture(scope="module")
def streamed_runs(simulator, queries):
    """Every (backend, workers) cell, stealing disabled, with chunk capture."""
    runs = {}

    def capture():
        chunks = {}

        def on_chunk(chunk):
            chunks.setdefault(chunk.query_id, []).append(chunk)

        return chunks, on_chunk

    chunks, on_chunk = capture()
    runs[("serial", 1)] = (
        serve_serial(simulator, queries, on_chunk=on_chunk),
        chunks,
    )
    for backend in ("virtual", "process"):
        for workers in WORKER_COUNTS:
            chunks, on_chunk = capture()
            runs[(backend, workers)] = (
                serve_parallel(
                    simulator, queries, backend, workers, stealing=False, on_chunk=on_chunk
                ),
                chunks,
            )
    return runs


class TestChunkSequenceParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_virtual_and_process_streams_are_identical(self, streamed_runs, workers):
        _virtual_result, virtual_chunks = streamed_runs[("virtual", workers)]
        _process_result, process_chunks = streamed_runs[("process", workers)]
        assert signature(virtual_chunks) == signature(process_chunks)

    @pytest.mark.parametrize("backend", ("virtual", "process"))
    def test_single_worker_matches_the_serial_engine(self, streamed_runs, backend):
        _serial_result, serial_chunks = streamed_runs[("serial", 1)]
        _backend_result, backend_chunks = streamed_runs[(backend, 1)]
        assert signature(backend_chunks) == signature(serial_chunks)

    def test_serving_reports_agree_across_backends(self, streamed_runs):
        for workers in WORKER_COUNTS:
            virtual = streamed_runs[("virtual", workers)][0].serving
            process = streamed_runs[("process", workers)][0].serving
            assert virtual.completed == process.completed
            assert virtual.chunks == process.chunks
            assert virtual.avg_time_to_first_result_s == pytest.approx(
                process.avg_time_to_first_result_s, rel=1e-9
            )
            assert virtual.avg_time_to_completion_s == pytest.approx(
                process.avg_time_to_completion_s, rel=1e-9
            )

    @pytest.mark.parametrize("cell", [("serial", 1), ("virtual", 2), ("process", 4)])
    def test_progress_fractions_are_well_formed(self, streamed_runs, cell):
        _result, chunks_by_query = streamed_runs[cell]
        assert chunks_by_query, "the run must stream at least one chunk"
        for chunks in chunks_by_query.values():
            fractions = [chunk.progress for chunk in chunks]
            assert fractions == sorted(fractions)
            assert fractions[-1] == pytest.approx(1.0)
            assert chunks[-1].final
            assert all(not chunk.final for chunk in chunks[:-1])
            seqs = [chunk.seq for chunk in chunks]
            assert seqs == list(range(len(chunks)))


class TestChunkOrderUnderStealing:
    """With stealing enabled the schedules diverge across backends, but
    each backend must still complete the same query set and stream every
    query's chunks in non-decreasing virtual time."""

    @pytest.fixture(scope="class")
    def stolen_runs(self, simulator, queries):
        runs = {}
        for backend in ("virtual", "process"):
            chunks = {}

            def on_chunk(chunk, chunks=chunks):
                chunks.setdefault(chunk.query_id, []).append(chunk)

            result = serve_parallel(
                simulator, queries, backend, workers=4, stealing=True, on_chunk=on_chunk
            )
            runs[backend] = (result, chunks)
        return runs

    def test_completion_sets_are_identical(self, stolen_runs, simulator, queries):
        serial = serve_serial(simulator, queries)
        expected = serial.serving.completed
        for backend in ("virtual", "process"):
            result, chunks = stolen_runs[backend]
            assert result.serving.completed == expected
            finished = {qid for qid, seq in chunks.items() if seq and seq[-1].final}
            assert len(finished) == expected

    @pytest.mark.parametrize("backend", ("virtual", "process"))
    def test_chunks_arrive_in_non_decreasing_virtual_time(self, stolen_runs, backend):
        result, chunks_by_query = stolen_runs[backend]
        assert result.steals > 0 or backend == "process", (
            "the skewed saturated trace should trigger stealing on the "
            "virtual backend; process-backend steals depend on the window"
        )
        for query_id, chunks in chunks_by_query.items():
            times = [chunk.time_ms for chunk in chunks]
            assert times == sorted(times), f"query {query_id} streamed out of order"
            fractions = [chunk.progress for chunk in chunks]
            assert fractions == sorted(fractions)
