"""Tests for the cross-match query model."""

import pytest

from repro.htm.curve import HTMRange
from repro.htm.geometry import SkyPoint
from repro.workload.query import CrossMatchObject, CrossMatchQuery, QueryStatus


class TestCrossMatchObject:
    def test_position_property(self):
        with_position = CrossMatchObject(1, HTMRange(0, 10), ra=10.0, dec=-5.0)
        without_position = CrossMatchObject(2, HTMRange(0, 10))
        assert with_position.position == SkyPoint(10.0, -5.0)
        assert without_position.position is None

    def test_overlaps_range(self):
        obj = CrossMatchObject(1, HTMRange(100, 200))
        assert obj.overlaps_range(HTMRange(150, 300))
        assert not obj.overlaps_range(HTMRange(201, 300))


class TestCrossMatchQuery:
    def test_requires_objects_or_footprint(self):
        with pytest.raises(ValueError):
            CrossMatchQuery(query_id=1)

    def test_footprint_counts_must_be_positive(self):
        with pytest.raises(ValueError):
            CrossMatchQuery(query_id=1, bucket_footprint={0: 0})

    def test_object_count_from_objects_and_footprint(self):
        explicit = CrossMatchQuery(
            query_id=1,
            objects=(CrossMatchObject(0, HTMRange(0, 1)), CrossMatchObject(1, HTMRange(2, 3))),
        )
        abstract = CrossMatchQuery(query_id=2, bucket_footprint={0: 10, 4: 7})
        assert explicit.object_count == 2
        assert not explicit.is_abstract
        assert abstract.object_count == 17
        assert abstract.is_abstract

    def test_with_arrival_time_copies(self):
        query = CrossMatchQuery(query_id=1, bucket_footprint={0: 5}, arrival_time_s=1.0)
        shifted = query.with_arrival_time(9.0)
        assert shifted.arrival_time_s == 9.0
        assert query.arrival_time_s == 1.0
        assert shifted.bucket_footprint == query.bucket_footprint
        assert shifted.bucket_footprint is not query.bucket_footprint

    def test_default_status_is_pending(self):
        query = CrossMatchQuery(query_id=1, bucket_footprint={0: 5})
        assert query.status is QueryStatus.PENDING
        assert query.footprint_or_none() == {0: 5}
