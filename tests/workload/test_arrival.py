"""Tests for arrival processes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.arrival import (
    BurstyArrivalProcess,
    PoissonArrivalProcess,
    UniformArrivalProcess,
    apply_arrival_times,
    observed_rate_qps,
)
from repro.workload.query import CrossMatchQuery


def make_queries(count):
    return [CrossMatchQuery(query_id=i, bucket_footprint={0: 1}) for i in range(count)]


class TestPoisson:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess(0.0)

    def test_times_are_monotone_and_rate_is_respected(self):
        process = PoissonArrivalProcess(rate_qps=2.0, seed=1)
        times = process.arrival_times(2_000)
        assert times == sorted(times)
        empirical = (len(times) - 1) / (times[-1] - times[0])
        assert empirical == pytest.approx(2.0, rel=0.15)

    def test_deterministic_given_seed(self):
        assert PoissonArrivalProcess(1.0, seed=7).arrival_times(10) == PoissonArrivalProcess(
            1.0, seed=7
        ).arrival_times(10)


class TestUniform:
    def test_regular_spacing(self):
        times = UniformArrivalProcess(rate_qps=0.5).arrival_times(4)
        assert times == pytest.approx([2.0, 4.0, 6.0, 8.0])

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            UniformArrivalProcess(0.0)


class TestBursty:
    def test_bursts_are_separated_by_gaps(self):
        process = BurstyArrivalProcess(
            burst_rate_qps=10.0, burst_length=5, gap_seconds=100.0, seed=3
        )
        times = process.arrival_times(15)
        assert times == sorted(times)
        # The gap between burst 1 and burst 2 dwarfs intra-burst spacing.
        assert times[5] - times[4] > 50.0
        assert times[4] - times[0] < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivalProcess(0.0, 5, 1.0)
        with pytest.raises(ValueError):
            BurstyArrivalProcess(1.0, 0, 1.0)
        with pytest.raises(ValueError):
            BurstyArrivalProcess(1.0, 5, -1.0)


class TestArrivalProcessProperties:
    """Property tests for the ``ArrivalProcess`` protocol's contract.

    Every process must be (a) deterministic per seed, (b) non-decreasing
    with every time at or after ``start_time_s``, and (c) faithful to its
    nominal rate over a long run.  The scenario library leans on all
    three (recorded fixtures replay bit-identically only because (a)
    holds), so they are pinned across the whole parameter space here.
    """

    @staticmethod
    def processes(rate, seed, start):
        return (
            PoissonArrivalProcess(rate_qps=rate, seed=seed, start_time_s=start),
            UniformArrivalProcess(rate_qps=rate, start_time_s=start),
            BurstyArrivalProcess(
                burst_rate_qps=rate,
                burst_length=7,
                gap_seconds=0.0,
                seed=seed,
                start_time_s=start,
            ),
        )

    @settings(max_examples=40, deadline=None)
    @given(
        rate=st.floats(min_value=0.05, max_value=50.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        start=st.floats(min_value=0.0, max_value=1e4),
        count=st.integers(min_value=0, max_value=200),
    )
    def test_deterministic_per_seed(self, rate, seed, start, count):
        for first, second in zip(
            self.processes(rate, seed, start), self.processes(rate, seed, start)
        ):
            assert first.arrival_times(count) == second.arrival_times(count)

    @settings(max_examples=40, deadline=None)
    @given(
        rate=st.floats(min_value=0.05, max_value=50.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        start=st.floats(min_value=0.0, max_value=1e4),
        count=st.integers(min_value=1, max_value=200),
    )
    def test_non_decreasing_and_after_start(self, rate, seed, start, count):
        for process in self.processes(rate, seed, start):
            times = process.arrival_times(count)
            assert len(times) == count
            assert times == sorted(times)
            assert times[0] >= start

    @settings(max_examples=15, deadline=None)
    @given(
        rate=st.floats(min_value=0.5, max_value=20.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_empirical_rate_tracks_nominal_rate(self, rate, seed):
        # Gapless bursts and uniform spacing are exact; Poisson needs a
        # long run and a statistical tolerance.
        times = PoissonArrivalProcess(rate_qps=rate, seed=seed).arrival_times(4_000)
        empirical = (len(times) - 1) / (times[-1] - times[0])
        assert empirical == pytest.approx(rate, rel=0.12)
        uniform = UniformArrivalProcess(rate_qps=rate).arrival_times(100)
        assert (len(uniform) - 1) / (uniform[-1] - uniform[0]) == pytest.approx(rate)


class TestApplication:
    def test_apply_arrival_times_preserves_order_and_queries(self):
        queries = make_queries(5)
        stamped = apply_arrival_times(queries, UniformArrivalProcess(1.0))
        assert [q.query_id for q in stamped] == [0, 1, 2, 3, 4]
        assert [q.arrival_time_s for q in stamped] == pytest.approx([1, 2, 3, 4, 5])
        # Originals are untouched.
        assert all(q.arrival_time_s == 0.0 for q in queries)

    def test_observed_rate(self):
        stamped = apply_arrival_times(make_queries(11), UniformArrivalProcess(2.0))
        assert observed_rate_qps(stamped) == pytest.approx(2.0)
        assert observed_rate_qps(make_queries(1)) == 0.0
