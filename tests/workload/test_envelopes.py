"""Scenario SLA envelopes: derivation, fixture round-trip, drift detection.

The committed fixtures under ``tests/fixtures/envelopes/`` are checked
exactly — the canonical serving replay is a pure function of
``(scenario, query_count, bucket_count, seed)`` — and the check suite
here doubles as the local version of the CI envelope job.
"""

import json

import pytest

from repro.workload.envelopes import (
    DEFAULT_ENVELOPE_DIR,
    ENVELOPE_VERSION,
    check_envelope,
    compute_envelope,
    envelope_path,
    read_envelope,
    write_envelope,
)
from repro.workload.scenarios import SCENARIOS

#: Small derivation parameters so each test replay stays fast.
FAST = dict(query_count=40, bucket_count=64, seed=7)


@pytest.fixture(scope="module")
def hotspot_envelope():
    return compute_envelope("hotspot_zone_skew", **FAST)


class TestComputeEnvelope:
    def test_summarises_the_serving_replay(self, hotspot_envelope):
        envelope = hotspot_envelope
        assert envelope["version"] == ENVELOPE_VERSION
        assert envelope["scenario"] == "hotspot_zone_skew"
        admission = envelope["admission"]
        assert admission["offered"] == FAST["query_count"]
        assert admission["admitted"] + admission["rejected"] == admission["offered"]
        assert envelope["completion"]["chunks"] >= envelope["completion"]["completed"]
        assert envelope["result_digest"]
        for counts in envelope["sla"].values():
            assert 0.0 <= counts["first_result_hit_rate"] <= 1.0
            assert 0.0 <= counts["completion_hit_rate"] <= 1.0

    def test_is_deterministic(self, hotspot_envelope):
        assert compute_envelope("hotspot_zone_skew", **FAST) == hotspot_envelope

    def test_is_json_serialisable(self, hotspot_envelope):
        assert json.loads(json.dumps(hotspot_envelope)) == hotspot_envelope

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            compute_envelope("warp_drive")


class TestFixtureRoundTrip:
    def test_write_then_check_passes(self, hotspot_envelope, tmp_path):
        path = write_envelope(hotspot_envelope, str(tmp_path))
        assert path == envelope_path("hotspot_zone_skew", str(tmp_path))
        assert read_envelope("hotspot_zone_skew", str(tmp_path)) == hotspot_envelope
        assert check_envelope("hotspot_zone_skew", str(tmp_path)) == []

    def test_drift_is_detected_and_named(self, hotspot_envelope, tmp_path):
        tampered = json.loads(json.dumps(hotspot_envelope))
        tampered["admission"]["admitted"] += 1
        tampered["result_digest"] = "0" * 16
        write_envelope(tampered, str(tmp_path))
        mismatches = check_envelope("hotspot_zone_skew", str(tmp_path))
        assert any("admission.admitted" in line for line in mismatches)
        assert any("result_digest" in line for line in mismatches)

    def test_version_mismatch_rejected(self, hotspot_envelope, tmp_path):
        stale = dict(hotspot_envelope, version=ENVELOPE_VERSION + 1)
        write_envelope(stale, str(tmp_path))
        with pytest.raises(ValueError, match="version"):
            read_envelope("hotspot_zone_skew", str(tmp_path))


class TestCommittedFixtures:
    def test_every_scenario_has_a_committed_fixture(self):
        for name in SCENARIOS:
            envelope = read_envelope(name, DEFAULT_ENVELOPE_DIR)
            assert envelope["scenario"] == name

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_committed_fixture_still_holds(self, name):
        assert check_envelope(name, DEFAULT_ENVELOPE_DIR) == []
