"""Tests for the synthetic trace generator (skew, locality, reproducibility)."""

import pytest

from repro.workload.generator import TraceConfig, TraceGenerator
from repro.workload.stats import TraceStatistics


def small_config(**overrides):
    defaults = dict(query_count=250, bucket_count=256, seed=99)
    defaults.update(overrides)
    return TraceConfig(**defaults)


class TestConfigValidation:
    def test_counts_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceConfig(query_count=0)
        with pytest.raises(ValueError):
            TraceConfig(bucket_count=0)

    def test_span_bounds(self):
        with pytest.raises(ValueError):
            TraceConfig(min_span=0)
        with pytest.raises(ValueError):
            TraceConfig(min_span=10, max_span=5)
        with pytest.raises(ValueError):
            TraceConfig(bucket_count=16, max_span=64)

    def test_locality_and_zipf_bounds(self):
        with pytest.raises(ValueError):
            TraceConfig(temporal_locality=1.5)
        with pytest.raises(ValueError):
            TraceConfig(zipf_exponent=0.0)

    def test_locality_endpoints_are_valid(self):
        assert TraceConfig(temporal_locality=0.0).temporal_locality == 0.0
        assert TraceConfig(temporal_locality=1.0).temporal_locality == 1.0
        with pytest.raises(ValueError):
            TraceConfig(temporal_locality=-0.1)

    def test_degenerate_span_is_valid(self):
        config = TraceConfig(min_span=3, max_span=3)
        assert config.min_span == config.max_span == 3
        trace = TraceGenerator(
            TraceConfig(query_count=30, bucket_count=64, seed=2, min_span=1, max_span=1)
        ).generate(attach_arrivals=False)
        assert all(len(q.bucket_footprint) == 1 for q in trace)

    def test_span_may_fill_the_whole_sky(self):
        config = TraceConfig(bucket_count=16, max_span=16)
        assert config.max_span == 16

    def test_objects_per_query_median_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceConfig(objects_per_query_bucket_median=0)
        with pytest.raises(ValueError):
            TraceConfig(objects_per_query_bucket_median=-5)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(query_count=-1)
        with pytest.raises(ValueError):
            TraceConfig(bucket_count=-16)


class TestGeneration:
    def test_trace_size_and_query_ids(self):
        trace = TraceGenerator(small_config()).generate(attach_arrivals=False)
        assert len(trace) == 250
        assert [q.query_id for q in trace] == list(range(250))
        assert all(q.is_abstract for q in trace)

    def test_footprints_respect_bucket_count(self):
        config = small_config()
        trace = TraceGenerator(config).generate(attach_arrivals=False)
        for query in trace:
            assert all(0 <= bucket < config.bucket_count for bucket in query.bucket_footprint)
            assert all(count >= 1 for count in query.bucket_footprint.values())
            assert len(query.bucket_footprint) <= config.max_span

    def test_generation_is_deterministic(self):
        a = TraceGenerator(small_config()).generate(attach_arrivals=False)
        b = TraceGenerator(small_config()).generate(attach_arrivals=False)
        assert [q.bucket_footprint for q in a] == [q.bucket_footprint for q in b]

    def test_different_seeds_differ(self):
        a = TraceGenerator(small_config(seed=1)).generate(attach_arrivals=False)
        b = TraceGenerator(small_config(seed=2)).generate(attach_arrivals=False)
        assert [q.bucket_footprint for q in a] != [q.bucket_footprint for q in b]

    def test_arrival_times_attached_and_monotone(self):
        trace = TraceGenerator(small_config()).generate(attach_arrivals=True)
        times = [q.arrival_time_s for q in trace]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_with_saturation_rescales_arrivals(self):
        trace = TraceGenerator(small_config()).generate()
        slow = trace.with_saturation(0.1)
        fast = trace.with_saturation(10.0)
        assert slow.queries[-1].arrival_time_s > fast.queries[-1].arrival_time_s
        # The underlying footprints are untouched.
        assert slow.queries[0].bucket_footprint == fast.queries[0].bucket_footprint


class TestWorkloadShape:
    """The generated trace must reproduce the paper's published skew."""

    @pytest.fixture(scope="class")
    def stats(self):
        trace = TraceGenerator(TraceConfig(query_count=800, bucket_count=1024, seed=5)).generate(
            attach_arrivals=False
        )
        return TraceStatistics(trace.queries)

    def test_top_ten_buckets_touch_a_majority_of_queries(self, stats):
        top10 = [bucket for bucket, _count in stats.top_buckets_by_reuse(10)]
        fraction = stats.fraction_of_queries_touching(top10)
        # Paper: ~61%.  Accept a generous band around it.
        assert 0.4 <= fraction <= 0.9

    def test_two_percent_of_buckets_carry_about_half_the_workload(self, stats):
        share = stats.fraction_of_workload_in_top_fraction(0.02)
        # Paper: ~50%.
        assert 0.3 <= share <= 0.7

    def test_workload_has_a_long_tail(self, stats):
        # At least half of the touched buckets individually carry <1% of work.
        workload = stats.bucket_workload()
        total = sum(workload.values())
        light = sum(1 for count in workload.values() if count / total < 0.01)
        assert light >= 0.5 * len(workload)

    def test_total_objects_are_data_intensive(self, stats):
        # Long-running cross-matches: hundreds of objects per query on average.
        assert stats.total_objects / stats.query_count > 200
