"""Tests for trace statistics (the Figure 5 / Figure 6 characterisation)."""

import pytest

from repro.htm.curve import HTMRange
from repro.storage.partitioner import BucketPartitioner
from repro.workload.query import CrossMatchObject, CrossMatchQuery
from repro.workload.stats import TraceStatistics


def abstract(query_id, footprint):
    return CrossMatchQuery(query_id=query_id, bucket_footprint=footprint)


@pytest.fixture()
def simple_stats():
    queries = [
        abstract(0, {0: 10, 1: 5}),
        abstract(1, {0: 20}),
        abstract(2, {2: 1}),
        abstract(3, {0: 5, 2: 5}),
    ]
    return TraceStatistics(queries)


class TestScalars:
    def test_counts(self, simple_stats):
        assert simple_stats.query_count == 4
        assert simple_stats.touched_bucket_count == 3
        assert simple_stats.total_objects == 46
        assert simple_stats.bucket_workload() == {0: 35, 1: 5, 2: 6}
        assert simple_stats.bucket_reuse() == {0: 3, 1: 1, 2: 2}

    def test_top_buckets(self, simple_stats):
        assert simple_stats.top_buckets_by_reuse(1) == [(0, 3)]
        assert simple_stats.top_buckets_by_workload(2) == [(0, 35), (2, 6)]

    def test_fraction_of_queries_touching(self, simple_stats):
        assert simple_stats.fraction_of_queries_touching([0]) == 0.75
        assert simple_stats.fraction_of_queries_touching([1, 2]) == 0.75
        assert simple_stats.fraction_of_queries_touching([7]) == 0.0

    def test_workload_fraction_in_top_fraction(self, simple_stats):
        # Top 1 of 3 buckets (fraction 0.34 rounds to rank 1) carries 35/46.
        assert simple_stats.fraction_of_workload_in_top_fraction(0.34) == pytest.approx(35 / 46)
        with pytest.raises(ValueError):
            simple_stats.fraction_of_workload_in_top_fraction(0.0)


class TestFigureSeries:
    def test_reuse_timeline_ranks_by_reuse(self, simple_stats):
        timeline = simple_stats.reuse_timeline(top_n=2)
        # Bucket 0 is rank 1, bucket 2 is rank 2.
        assert (1, 1) in timeline and (2, 1) in timeline and (4, 1) in timeline
        assert (3, 2) in timeline and (4, 2) in timeline
        assert all(rank in (1, 2) for _q, rank in timeline)

    def test_cumulative_curve_reaches_100_percent(self, simple_stats):
        curve = simple_stats.cumulative_workload_curve()
        assert curve[0] == (1, pytest.approx(100.0 * 35 / 46))
        assert curve[-1][1] == pytest.approx(100.0)
        percentages = [pct for _rank, pct in curve]
        assert percentages == sorted(percentages)

    def test_buckets_for_workload_fraction(self, simple_stats):
        assert simple_stats.buckets_for_workload_fraction(0.5) == 1
        assert simple_stats.buckets_for_workload_fraction(1.0) == 3

    def test_describe_keys(self, simple_stats):
        summary = simple_stats.describe()
        assert set(summary) == {
            "queries",
            "touched_buckets",
            "total_objects",
            "fraction_queries_touching_top10",
            "workload_fraction_in_top_2pct",
        }


class TestDegenerateTraces:
    """Statistics must stay total on empty and single-query traces."""

    def test_empty_trace(self):
        stats = TraceStatistics([])
        assert stats.query_count == 0
        assert stats.touched_bucket_count == 0
        assert stats.total_objects == 0
        assert stats.bucket_workload() == {}
        assert stats.bucket_reuse() == {}
        assert stats.top_buckets_by_reuse(5) == []
        assert stats.fraction_of_queries_touching([0, 1]) == 0.0
        assert stats.fraction_of_workload_in_top_fraction(0.5) == 0.0
        assert stats.cumulative_workload_curve() == []
        summary = stats.describe()
        assert summary["queries"] == 0

    def test_single_query(self):
        stats = TraceStatistics([abstract(0, {3: 7})])
        assert stats.query_count == 1
        assert stats.touched_bucket_count == 1
        assert stats.total_objects == 7
        assert stats.fraction_of_queries_touching([3]) == 1.0
        assert stats.fraction_of_workload_in_top_fraction(1.0) == pytest.approx(1.0)
        assert stats.buckets_for_workload_fraction(1.0) == 1
        assert stats.cumulative_workload_curve() == [(1, pytest.approx(100.0))]

    def test_heavy_tail_trace_concentrates_workload(self):
        # One whale bucket plus many minnows: the top-fraction measure
        # must attribute nearly everything to the whale.
        queries = [abstract(0, {0: 10_000})] + [
            abstract(i, {i: 1}) for i in range(1, 101)
        ]
        stats = TraceStatistics(queries)
        assert stats.touched_bucket_count == 101
        share = stats.fraction_of_workload_in_top_fraction(0.01)
        assert share == pytest.approx(10_000 / 10_100)
        assert stats.buckets_for_workload_fraction(0.9) == 1

    def test_top_fraction_bounds_still_enforced_when_empty(self):
        stats = TraceStatistics([])
        with pytest.raises(ValueError):
            stats.fraction_of_workload_in_top_fraction(0.0)
        with pytest.raises(ValueError):
            stats.fraction_of_workload_in_top_fraction(1.5)


class TestExplicitObjectQueries:
    def test_layout_required_for_explicit_objects(self):
        query = CrossMatchQuery(
            query_id=1, objects=(CrossMatchObject(0, HTMRange(8 << 28, (8 << 28) + 10)),)
        )
        with pytest.raises(ValueError):
            TraceStatistics([query])

    def test_footprint_computed_through_layout(self):
        layout = BucketPartitioner(objects_per_bucket=100, leaf_level=14).partition_density(4)
        low = layout[1].htm_range.low
        query = CrossMatchQuery(
            query_id=1, objects=(CrossMatchObject(0, HTMRange(low, low + 5)),)
        )
        stats = TraceStatistics([query], layout=layout)
        assert stats.bucket_workload() == {1: 1}
