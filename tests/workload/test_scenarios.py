"""Tests for the adversarial scenario library and its recorded fixtures."""

import pytest

from repro.workload.replay import replay_recorded
from repro.workload.scenarios import (
    SCENARIOS,
    DiurnalFlashCrowdProcess,
    build_scenario,
    record_scenario,
)


class TestCatalog:
    def test_catalog_ships_the_documented_scenarios(self):
        assert set(SCENARIOS) == {
            "diurnal_flash_crowd",
            "hotspot_zone_skew",
            "slow_client_backpressure",
            "heavy_tail",
        }
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description
            assert scenario.default_query_count > 0

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            build_scenario("nope")
        with pytest.raises(KeyError, match="unknown scenario"):
            record_scenario("nope", "/tmp/never-written.lrtr")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_deterministic_per_seed_and_sorted_by_arrival(self, name):
        first = build_scenario(name, query_count=40, bucket_count=64, seed=7)
        second = build_scenario(name, query_count=40, bucket_count=64, seed=7)
        other = build_scenario(name, query_count=40, bucket_count=64, seed=8)
        assert len(first) == 40
        assert [q.arrival_time_s for q in first] == [q.arrival_time_s for q in second]
        assert [q.bucket_footprint for q in first] == [q.bucket_footprint for q in second]
        assert [q.arrival_time_s for q in first] != [q.arrival_time_s for q in other]
        times = [q.arrival_time_s for q in first]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)


class TestScenarioShapes:
    def test_diurnal_flash_queries_carry_deadline_classes(self):
        queries = build_scenario("diurnal_flash_crowd", query_count=160, bucket_count=64, seed=3)
        classes = {q.deadline_class for q in queries}
        assert classes <= {"interactive", "standard"}
        # The flash windows are what make the scenario adversarial, so the
        # builder must actually land arrivals inside them.
        assert "interactive" in classes and "standard" in classes
        process = DiurnalFlashCrowdProcess(
            base_rate_qps=0.4,
            peak_rate_qps=1.6,
            period_s=240.0,
            flash_starts_s=(90.0, 300.0),
            flash_duration_s=40.0,
            flash_multiplier=6.0,
            seed=3,
        )
        for query in queries:
            expected = "interactive" if process.in_flash(query.arrival_time_s) else "standard"
            assert query.deadline_class == expected

    def test_slow_client_carries_real_client_ids(self):
        queries = build_scenario(
            "slow_client_backpressure", query_count=40, bucket_count=64, seed=5
        )
        ids = {q.client_id for q in queries}
        assert ids == {0, 1, 2, 3}
        flood = [q for q in queries if q.client_id == 3]
        steady = [q for q in queries if q.client_id != 3]
        assert len(flood) == 10  # one quarter of the stream floods
        # The flood is a clustered burst: it spans far less wall time than
        # the steady stream it interrupts.
        flood_span = max(q.arrival_time_s for q in flood) - min(
            q.arrival_time_s for q in flood
        )
        steady_span = max(q.arrival_time_s for q in steady) - min(
            q.arrival_time_s for q in steady
        )
        assert flood_span < steady_span / 4

    def test_heavy_tail_spans_are_wider_than_the_friendly_default(self):
        heavy = build_scenario("heavy_tail", query_count=120, bucket_count=256, seed=9)
        friendly = build_scenario("hotspot_zone_skew", query_count=120, bucket_count=256, seed=9)
        assert max(len(q.bucket_footprint) for q in heavy) > max(
            len(q.bucket_footprint) for q in friendly
        )


class TestDiurnalProcess:
    def test_validation(self):
        with pytest.raises(ValueError, match="base rate"):
            DiurnalFlashCrowdProcess(base_rate_qps=0.0, peak_rate_qps=1.0, period_s=60.0)
        with pytest.raises(ValueError, match="peak rate"):
            DiurnalFlashCrowdProcess(base_rate_qps=1.0, peak_rate_qps=0.5, period_s=60.0)
        with pytest.raises(ValueError, match="period"):
            DiurnalFlashCrowdProcess(base_rate_qps=1.0, peak_rate_qps=2.0, period_s=0.0)
        with pytest.raises(ValueError, match="flash duration"):
            DiurnalFlashCrowdProcess(
                base_rate_qps=1.0, peak_rate_qps=2.0, period_s=60.0, flash_duration_s=0.0
            )
        with pytest.raises(ValueError, match="flash multiplier"):
            DiurnalFlashCrowdProcess(
                base_rate_qps=1.0, peak_rate_qps=2.0, period_s=60.0, flash_multiplier=0.5
            )

    def test_rate_tracks_the_diurnal_cycle_and_flashes(self):
        process = DiurnalFlashCrowdProcess(
            base_rate_qps=1.0,
            peak_rate_qps=3.0,
            period_s=100.0,
            flash_starts_s=(10.0,),
            flash_duration_s=5.0,
            flash_multiplier=4.0,
        )
        assert process.rate_at(0.0) == pytest.approx(1.0)  # midnight trough
        assert process.rate_at(50.0) == pytest.approx(3.0)  # midday peak
        assert process.in_flash(12.0) and not process.in_flash(16.0)
        assert process.rate_at(12.0) == pytest.approx(4.0 * process.rate_at(12.0) / 4.0)
        assert process.rate_at(12.0) > 4.0 * 0.9  # flash multiplies the diurnal rate

    def test_arrivals_deterministic_and_non_decreasing(self):
        kwargs = dict(base_rate_qps=1.0, peak_rate_qps=2.0, period_s=60.0, seed=11)
        first = DiurnalFlashCrowdProcess(**kwargs).arrival_times(200)
        second = DiurnalFlashCrowdProcess(**kwargs).arrival_times(200)
        assert first == second
        assert first == sorted(first)
        assert len(first) == 200


class TestRecordScenario:
    def test_round_trip_replays_bit_identically(self, tmp_path):
        path = str(tmp_path / "hotspot.lrtr")
        info = record_scenario(
            "hotspot_zone_skew", path, query_count=30, bucket_count=64, seed=4
        )
        assert info.query_count == 30
        outcome = replay_recorded(path)
        assert outcome.trace.meta["scenario"] == "hotspot_zone_skew"
        assert outcome.digest_checked
        assert outcome.digest_matches

    def test_replay_with_different_shape_skips_digest(self, tmp_path):
        path = str(tmp_path / "hotspot.lrtr")
        record_scenario("hotspot_zone_skew", path, query_count=20, bucket_count=64, seed=4)
        outcome = replay_recorded(path, workers=2, backend="virtual")
        assert not outcome.digest_checked
        assert outcome.result.completed_queries == 20
