"""Tests for the .lrtr trace codec (record/replay's on-disk format)."""

import struct

import pytest

from repro.htm.curve import HTMRange
from repro.workload.query import CrossMatchObject, CrossMatchQuery
from repro.workload.trace_io import (
    TRACE_SUFFIX,
    TraceFormatError,
    read_trace,
    run_digest,
    write_trace,
)


def abstract(query_id, footprint, arrival=0.0, **kwargs):
    return CrossMatchQuery(
        query_id=query_id,
        bucket_footprint=footprint,
        arrival_time_s=arrival,
        **kwargs,
    )


@pytest.fixture()
def queries():
    return [
        abstract(0, {0: 10, 5: 3}, arrival=0.5),
        abstract(1, {2: 7}, arrival=1.25, client_id=3, deadline_class="interactive"),
        abstract(2, {0: 1, 1: 1, 2: 1}, arrival=2.0, archives=("sdss",)),
        CrossMatchQuery(
            query_id=3,
            objects=(
                CrossMatchObject(
                    object_id=77,
                    htm_range=HTMRange(8 << 28, (8 << 28) + 10),
                    ra=12.5,
                    dec=-3.25,
                    match_radius_arcsec=2.0,
                    magnitude=17.5,
                ),
            ),
            arrival_time_s=3.0,
        ),
    ]


class TestRoundTrip:
    def test_everything_survives(self, tmp_path, queries):
        path = str(tmp_path / f"trace{TRACE_SUFFIX}")
        info = write_trace(path, queries, meta={"label": "t"}, expected_digest="abc")
        assert info.query_count == 4
        assert info.byte_size > 0
        trace = read_trace(path)
        assert len(trace) == 4
        assert trace.expected_digest == "abc"
        assert trace.meta["label"] == "t"
        for original, decoded in zip(queries, trace.queries):
            assert decoded.query_id == original.query_id
            assert decoded.arrival_time_s == original.arrival_time_s
            assert decoded.bucket_footprint == original.bucket_footprint
            assert decoded.client_id == original.client_id
            assert decoded.deadline_class == original.deadline_class
            assert decoded.archives == original.archives

    def test_explicit_objects_survive_bit_exactly(self, tmp_path, queries):
        path = str(tmp_path / f"trace{TRACE_SUFFIX}")
        write_trace(path, queries)
        decoded = read_trace(path).queries[3]
        (obj,) = decoded.objects
        assert obj.object_id == 77
        assert obj.htm_range == HTMRange(8 << 28, (8 << 28) + 10)
        assert obj.ra == 12.5 and obj.dec == -3.25
        assert obj.match_radius_arcsec == 2.0 and obj.magnitude == 17.5

    def test_none_optionals_round_trip_as_none(self, tmp_path):
        path = str(tmp_path / f"trace{TRACE_SUFFIX}")
        write_trace(path, [abstract(0, {1: 1})])
        decoded = read_trace(path).queries[0]
        assert decoded.client_id is None
        assert decoded.deadline_class is None

    def test_empty_trace_round_trips(self, tmp_path):
        path = str(tmp_path / f"empty{TRACE_SUFFIX}")
        write_trace(path, [])
        trace = read_trace(path)
        assert len(trace) == 0
        assert trace.expected_digest == ""


class TestValidation:
    def test_crc_corruption_detected(self, tmp_path, queries):
        path = str(tmp_path / f"trace{TRACE_SUFFIX}")
        write_trace(path, queries)
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(TraceFormatError, match="CRC"):
            read_trace(path)

    def test_wrong_magic_rejected(self, tmp_path, queries):
        path = str(tmp_path / f"trace{TRACE_SUFFIX}")
        write_trace(path, queries)
        data = bytearray(open(path, "rb").read())
        data[0:4] = b"NOPE"
        open(path, "wb").write(bytes(data))
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace(path)

    def test_future_version_rejected(self, tmp_path, queries):
        path = str(tmp_path / f"trace{TRACE_SUFFIX}")
        write_trace(path, queries)
        data = bytearray(open(path, "rb").read())
        data[4:6] = struct.pack("<H", 99)
        open(path, "wb").write(bytes(data))
        with pytest.raises(TraceFormatError, match="version"):
            read_trace(path)

    def test_truncated_file_rejected(self, tmp_path, queries):
        path = str(tmp_path / f"trace{TRACE_SUFFIX}")
        write_trace(path, queries)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_predicate_queries_not_encodable(self, tmp_path):
        query = abstract(0, {0: 1}, predicate=lambda row: True)
        with pytest.raises(TraceFormatError, match="predicate"):
            write_trace(str(tmp_path / f"x{TRACE_SUFFIX}"), [query])

    def test_failed_write_leaves_no_file(self, tmp_path):
        path = tmp_path / f"x{TRACE_SUFFIX}"
        bad = abstract(1, {0: 1}, predicate=lambda row: True)
        with pytest.raises(TraceFormatError):
            write_trace(str(path), [abstract(0, {0: 1}), bad])
        assert not path.exists()


class TestRunDigest:
    def test_insensitive_to_dict_order(self):
        a = run_digest({1: 10.0, 2: 20.0}, [1.0])
        b = run_digest({2: 20.0, 1: 10.0}, [1.0])
        assert a == b

    def test_sensitive_to_times_and_parity_values(self):
        base = run_digest({1: 10.0}, [1.0, 2.0])
        assert run_digest({1: 10.5}, [1.0, 2.0]) != base
        assert run_digest({1: 10.0}, [1.0, 2.5]) != base
        assert run_digest({1: 10.0, 2: 0.0}, [1.0, 2.0]) != base

    def test_empty_run_has_a_digest(self):
        assert len(run_digest({}, [])) == 64
