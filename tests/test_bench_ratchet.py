"""Tests for the benchmark ratchet (snapshot comparison logic)."""

import json

import pytest

from benchmarks.ratchet import DEFAULT_TOLERANCE, compare, load_snapshot, main


def snapshot(**metrics):
    return {
        "scale": "small",
        "benchmarks": {
            "test_bench_store_columnar_scan": {
                "min_s": 0.01,
                "extra_info": {"file_megabytes": 5.41, **metrics},
            }
        },
    }


class TestCompare:
    def test_identical_snapshots_hold(self):
        base = snapshot(columnar_decode_mb_per_s=700.0)
        failures, report = compare(base, base)
        assert failures == []
        assert any("columnar_decode_mb_per_s" in line for line in report)

    def test_improvement_holds(self):
        failures, _ = compare(
            snapshot(columnar_decode_mb_per_s=700.0),
            snapshot(columnar_decode_mb_per_s=900.0),
        )
        assert failures == []

    def test_regression_beyond_tolerance_fails(self):
        failures, _ = compare(
            snapshot(columnar_decode_mb_per_s=700.0),
            snapshot(columnar_decode_mb_per_s=500.0),
        )
        assert len(failures) == 1
        assert "columnar_decode_mb_per_s" in failures[0]

    def test_regression_within_tolerance_holds(self):
        value = 700.0 * (1.0 - DEFAULT_TOLERANCE) + 1.0
        failures, _ = compare(
            snapshot(columnar_decode_mb_per_s=700.0),
            snapshot(columnar_decode_mb_per_s=value),
        )
        assert failures == []

    def test_missing_benchmark_fails(self):
        failures, _ = compare(
            snapshot(columnar_decode_mb_per_s=700.0),
            {"scale": "small", "benchmarks": {}},
        )
        assert failures and "missing from candidate" in failures[0]

    def test_dropped_metric_fails(self):
        failures, _ = compare(snapshot(columnar_decode_mb_per_s=700.0), snapshot())
        assert failures and "no longer records" in failures[0]

    def test_scale_mismatch_fails(self):
        candidate = snapshot(columnar_decode_mb_per_s=700.0)
        candidate["scale"] = "full"
        failures, _ = compare(snapshot(columnar_decode_mb_per_s=700.0), candidate)
        assert failures and "scale mismatch" in failures[0]

    def test_unratcheted_metrics_are_ignored(self):
        failures, _ = compare(
            snapshot(columnar_decode_mb_per_s=700.0, file_megabytes=100.0),
            snapshot(columnar_decode_mb_per_s=700.0, file_megabytes=1.0),
        )
        assert failures == []


class TestCli:
    def write(self, tmp_path, name, snap):
        path = tmp_path / name
        path.write_text(json.dumps(snap))
        return str(path)

    def test_main_returns_zero_when_holding(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", snapshot(columnar_decode_mb_per_s=700.0))
        cand = self.write(tmp_path, "cand.json", snapshot(columnar_decode_mb_per_s=710.0))
        assert main([base, cand]) == 0
        assert "ratchet holds" in capsys.readouterr().out

    def test_main_returns_one_on_regression(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", snapshot(columnar_decode_mb_per_s=700.0))
        cand = self.write(tmp_path, "cand.json", snapshot(columnar_decode_mb_per_s=100.0))
        assert main([base, cand]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_custom_tolerance(self, tmp_path):
        base = self.write(tmp_path, "base.json", snapshot(columnar_decode_mb_per_s=700.0))
        cand = self.write(tmp_path, "cand.json", snapshot(columnar_decode_mb_per_s=400.0))
        assert main([base, cand, "--tolerance", "0.5"]) == 0

    def test_bad_tolerance_rejected(self, tmp_path):
        base = self.write(tmp_path, "base.json", snapshot(columnar_decode_mb_per_s=700.0))
        with pytest.raises(SystemExit):
            main([base, base, "--tolerance", "1.5"])

    def test_malformed_snapshot_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit, match="missing 'benchmarks'"):
            load_snapshot(str(bad))
