"""Store-tier parity: in-memory vs file-backed across every backend.

PR 4's contract is that the storage tier changes only *physical* work,
never a virtual-clock number.  This harness replays one seeded workload
through {in-memory, file-backed} × {serial engine, virtual backend,
process backend} for workers {1, 2, 4} and asserts

* identical completion sets,
* identical per-query bucket coverage,
* identical virtual-clock totals (busy time, I/O and match cost, service
  and bucket-read counts, strategy counts),

and that the file-backed cells actually performed physical reads.  On the
process backend the file travels as a path-based snapshot, so this also
pins down that worker children reopening the store read-only reproduce
the coordinator's in-memory accounting exactly.
"""

import pytest

from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.parallel.backend import ParallelRunSpec, make_backend
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.disk_store import open_disk_store
from repro.storage.index import SpatialIndex
from repro.storage.ingest import materialize_layout
from repro.workload.generator import TraceConfig, TraceGenerator

BUCKETS = 48
WORKER_COUNTS = (1, 2, 4)
ROWS_PER_BUCKET = 24


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(bucket_count=BUCKETS)


@pytest.fixture(scope="module")
def site(tmp_path_factory, sim_config):
    """The shared site: one layout, one ingested store file."""
    simulator = Simulator(sim_config)
    path = tmp_path_factory.mktemp("store") / "site.lrbs"
    manifest = materialize_layout(path, simulator.layout, rows_per_bucket=ROWS_PER_BUCKET)
    return simulator.layout, manifest.path


@pytest.fixture(scope="module")
def queries():
    """A seeded closed batch (every arrival at t=0).

    As in ``test_backend_parity``, a closed batch makes the aggregate
    accounting invariant under shard count and steal schedule, so one
    serial reference pins every cell of the store × backend matrix.
    """
    import dataclasses

    config = TraceConfig(query_count=30, bucket_count=BUCKETS, seed=11)
    trace = TraceGenerator(config).generate()
    return tuple(dataclasses.replace(q, arrival_time_s=0.0) for q in trace.queries)


def build_store(site, sim_config, file_backed):
    layout, path = site
    disk = calibrated_disk_for_bucket_read(
        sim_config.bucket_megabytes, sim_config.cost.tb_ms / 1000.0
    )
    if file_backed:
        return open_disk_store(path, disk)
    return BucketStore(layout, disk)


def serial_outcome(site, sim_config, queries, file_backed):
    layout, _ = site
    store = build_store(site, sim_config, file_backed)
    engine = LifeRaftEngine(
        layout,
        store,
        scheduler=LifeRaftScheduler(SchedulerConfig(cost=sim_config.cost)),
        index=SpatialIndex([], rows=None, disk=None),
        config=EngineConfig(cache_buckets=sim_config.cache_buckets, cost=sim_config.cost),
    )
    for query in queries:
        engine.submit(query)
    engine.run_until_idle()
    report = engine.report()
    coverage = {}
    for batch in engine.batches:
        for query_id in batch.queries_served:
            coverage.setdefault(query_id, set()).add(batch.work_item.bucket_index)
    return {
        "completed": frozenset(engine.manager.completed_queries()),
        "coverage": {qid: frozenset(b) for qid, b in coverage.items()},
        "busy_ms": report.busy_time_ms,
        "io_ms": report.total_io_ms,
        "match_ms": report.total_match_ms,
        "services": report.bucket_services,
        "strategy_counts": report.strategy_counts,
        "bucket_reads": store.reads,
        "physical_reads": getattr(store, "page_reads", 0),
    }


def backend_outcome(site, sim_config, queries, backend_name, workers, file_backed):
    layout, _ = site
    store = build_store(site, sim_config, file_backed)
    spec = ParallelRunSpec(
        layout=layout,
        store=store,
        queries=queries,
        policy=LifeRaftScheduler(SchedulerConfig(cost=sim_config.cost)),
        config=EngineConfig(cache_buckets=sim_config.cache_buckets, cost=sim_config.cost),
        workers=workers,
        shard_strategy="round_robin",
        index=SpatialIndex([], rows=None, disk=None),
    )
    outcome = make_backend(backend_name).execute(spec)
    return {
        "completed": frozenset(outcome.completed),
        "coverage": outcome.coverage(),
        "busy_ms": outcome.report.busy_time_ms,
        "io_ms": outcome.report.total_io_ms,
        "match_ms": outcome.report.total_match_ms,
        "services": outcome.report.bucket_services,
        "strategy_counts": outcome.report.strategy_counts,
        "bucket_reads": outcome.bucket_reads,
        "real_read_s": outcome.store_real_read_s,
    }


@pytest.fixture(scope="module")
def reference(site, sim_config, queries):
    """The in-memory serial engine: every other cell must match it."""
    return serial_outcome(site, sim_config, queries, file_backed=False)


def assert_matches(cell, reference):
    assert cell["completed"] == reference["completed"]
    assert cell["coverage"] == reference["coverage"]
    assert cell["busy_ms"] == pytest.approx(reference["busy_ms"], rel=1e-12)
    assert cell["io_ms"] == pytest.approx(reference["io_ms"], rel=1e-12)
    assert cell["match_ms"] == pytest.approx(reference["match_ms"], rel=1e-12)
    assert cell["services"] == reference["services"]
    assert cell["strategy_counts"] == reference["strategy_counts"]
    assert cell["bucket_reads"] == reference["bucket_reads"]


class TestSerialStoreParity:
    def test_file_backed_serial_matches_in_memory(self, site, sim_config, queries, reference):
        cell = serial_outcome(site, sim_config, queries, file_backed=True)
        assert_matches(cell, reference)
        assert cell["physical_reads"] > 0, "file-backed run never touched the file"


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("backend_name", ("virtual", "process"))
class TestBackendStoreParity:
    def test_file_backed_matches_reference(
        self, site, sim_config, queries, reference, backend_name, workers
    ):
        cell = backend_outcome(site, sim_config, queries, backend_name, workers, file_backed=True)
        assert_matches(cell, reference)
        assert cell["real_read_s"] > 0.0, "file-backed run never touched the file"

    def test_in_memory_matches_reference(
        self, site, sim_config, queries, reference, backend_name, workers
    ):
        cell = backend_outcome(site, sim_config, queries, backend_name, workers, file_backed=False)
        assert_matches(cell, reference)


class TestSimulatorStoreSeam:
    """`Simulator(store_path=...)` exposes the tier end to end."""

    def test_run_parity_through_simulator(self, site, sim_config, queries):
        _, path = site
        simulator = Simulator(sim_config, store_path=path)
        file_backed = simulator.execute(queries, RunSpec())
        memory = simulator.execute(queries, RunSpec(store_path=None))
        assert file_backed.store_backend == "file"
        assert memory.store_backend == "memory"
        assert file_backed.completed_queries == memory.completed_queries
        assert file_backed.busy_time_s == pytest.approx(memory.busy_time_s, rel=1e-12)
        assert file_backed.total_io_s == pytest.approx(memory.total_io_s, rel=1e-12)
        assert file_backed.bucket_reads == memory.bucket_reads
        assert file_backed.real_read_s > 0.0

    def test_from_store_adopts_the_file_layout(self, site):
        layout, path = site
        simulator = Simulator.from_store(path)
        assert simulator.layout == layout
        assert simulator.config.bucket_count == BUCKETS

    def test_mismatched_bucket_count_rejected(self, site):
        _, path = site
        with pytest.raises(ValueError, match="buckets"):
            Simulator(SimulationConfig(bucket_count=BUCKETS + 1), store_path=path)

    def test_mismatched_layout_rejected(self, site, tmp_path, sim_config):
        # Same bucket count, different boundaries: caught by the deep check.
        other = Simulator(SimulationConfig(bucket_count=BUCKETS, objects_per_bucket=5_000))
        other_path = tmp_path / "other.lrbs"
        materialize_layout(other_path, other.layout, rows_per_bucket=4)
        simulator = Simulator(sim_config)
        with pytest.raises(ValueError, match="different partition"):
            simulator.execute([], RunSpec(store_path=other_path))
