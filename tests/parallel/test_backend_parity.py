"""Cross-backend parity: serial engine vs virtual backend vs process backend.

The execution backends promise that *where* the shard workers run changes
only the real wall clock, never the virtual-clock outcome.  This harness
pins that promise down by replaying one seeded workload three ways —
through the serial :class:`~repro.core.engine.LifeRaftEngine`, the
in-process :class:`~repro.parallel.backend.VirtualBackend`, and the
multiprocessing :class:`~repro.parallel.backend.ProcessBackend` — across
worker counts {1, 2, 4} and both shard strategies, asserting

* identical completion sets (every query finishes exactly once),
* identical per-query bucket coverage (each (query, bucket) pair is
  serviced exactly once, by exactly one shard),
* matching aggregate virtual-clock accounting: busy time, I/O and match
  cost totals, service and bucket-read counts, join-strategy counts.

The workload is a *closed batch* (every arrival at t=0), which makes the
aggregate accounting invariant under shard count and steal schedule: each
bucket's workload queue is complete before any service, so every bucket
is serviced exactly once at identical cost wherever it runs.  A second,
open-system workload (timed arrivals, stealing disabled) checks the
stronger property that each shard's *timeline* — every batch's start and
finish — is bit-for-bit identical across backends.
"""

import dataclasses

import pytest

from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.parallel.backend import ParallelRunSpec, ProcessBackend, make_backend
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import BucketPartitioner
from repro.workload.generator import TraceConfig, TraceGenerator

BUCKETS = 64
WORKER_COUNTS = (1, 2, 4)
STRATEGIES = ("round_robin", "zone")


@pytest.fixture(scope="module")
def layout():
    return BucketPartitioner().partition_density(BUCKETS)


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(bucket_count=BUCKETS)


@pytest.fixture(scope="module")
def engine_config(sim_config):
    return EngineConfig(cache_buckets=sim_config.cache_buckets, cost=sim_config.cost)


@pytest.fixture(scope="module")
def batch_queries(layout):
    """A seeded closed batch: every query arrives at t=0."""
    config = TraceConfig(query_count=40, bucket_count=BUCKETS, seed=7)
    trace = TraceGenerator(config).generate()
    return tuple(dataclasses.replace(q, arrival_time_s=0.0) for q in trace.queries)


@pytest.fixture(scope="module")
def timed_queries(layout):
    """A seeded open-system trace with real arrival times."""
    config = TraceConfig(query_count=50, bucket_count=BUCKETS, seed=21)
    return tuple(TraceGenerator(config).generate().with_saturation(3.0).queries)


def build_store(layout, sim_config):
    disk = calibrated_disk_for_bucket_read(
        sim_config.bucket_megabytes, sim_config.cost.tb_ms / 1000.0
    )
    return BucketStore(layout, disk)


def build_spec(layout, sim_config, engine_config, queries, workers, strategy, **kwargs):
    return ParallelRunSpec(
        layout=layout,
        store=build_store(layout, sim_config),
        queries=queries,
        policy=LifeRaftScheduler(SchedulerConfig(cost=sim_config.cost)),
        config=engine_config,
        workers=workers,
        shard_strategy=strategy,
        index=SpatialIndex([], rows=None, disk=None),
        **kwargs,
    )


@pytest.fixture(scope="module")
def serial_reference(layout, sim_config, engine_config, batch_queries):
    """The serial engine's outcome on the closed batch."""
    engine = LifeRaftEngine(
        layout,
        build_store(layout, sim_config),
        scheduler=LifeRaftScheduler(SchedulerConfig(cost=sim_config.cost)),
        index=SpatialIndex([], rows=None, disk=None),
        config=engine_config,
    )
    for query in batch_queries:
        engine.submit(query)
    engine.run_until_idle()
    coverage = {}
    for batch in engine.batches:
        for query_id in batch.queries_served:
            coverage.setdefault(query_id, set()).add(batch.work_item.bucket_index)
    return {
        "report": engine.report(),
        "completed": frozenset(engine.manager.completed_queries()),
        "coverage": {qid: frozenset(buckets) for qid, buckets in coverage.items()},
        "bucket_reads": engine.store.reads,
    }


@pytest.fixture(scope="module")
def backend_outcomes(layout, sim_config, engine_config, batch_queries):
    """Every (backend, workers, strategy) cell of the parity matrix."""
    outcomes = {}
    for backend_name in ("virtual", "process"):
        for workers in WORKER_COUNTS:
            for strategy in STRATEGIES:
                spec = build_spec(
                    layout, sim_config, engine_config, batch_queries, workers, strategy
                )
                outcomes[(backend_name, workers, strategy)] = make_backend(
                    backend_name
                ).execute(spec)
    return outcomes


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("backend_name", ("virtual", "process"))
class TestClosedBatchParity:
    def test_completion_set_matches_serial(
        self, backend_outcomes, serial_reference, backend_name, workers, strategy
    ):
        outcome = backend_outcomes[(backend_name, workers, strategy)]
        assert frozenset(outcome.completed) == serial_reference["completed"]
        # Completion order lists each query exactly once.
        assert len(outcome.completed) == len(set(outcome.completed))

    def test_per_query_bucket_coverage_matches_serial(
        self, backend_outcomes, serial_reference, backend_name, workers, strategy
    ):
        outcome = backend_outcomes[(backend_name, workers, strategy)]
        assert outcome.coverage() == serial_reference["coverage"]

    def test_no_service_is_duplicated(
        self, backend_outcomes, serial_reference, backend_name, workers, strategy
    ):
        outcome = backend_outcomes[(backend_name, workers, strategy)]
        seen = set()
        for record in outcome.services:
            for query_id in record.queries_served:
                pair = (query_id, record.bucket_index)
                assert pair not in seen, f"{pair} serviced twice"
                seen.add(pair)

    def test_virtual_clock_totals_match_serial(
        self, backend_outcomes, serial_reference, backend_name, workers, strategy
    ):
        outcome = backend_outcomes[(backend_name, workers, strategy)]
        report = outcome.report
        serial = serial_reference["report"]
        assert report.submitted_queries == serial.submitted_queries
        assert report.completed_queries == serial.completed_queries
        assert report.busy_time_ms == pytest.approx(serial.busy_time_ms, rel=1e-12)
        assert report.total_io_ms == pytest.approx(serial.total_io_ms, rel=1e-12)
        assert report.total_match_ms == pytest.approx(serial.total_match_ms, rel=1e-12)
        assert report.total_matches == serial.total_matches
        assert report.bucket_services == serial.bucket_services
        assert report.strategy_counts == serial.strategy_counts
        assert outcome.bucket_reads == serial_reference["bucket_reads"]

    def test_backends_agree_with_each_other(
        self, backend_outcomes, serial_reference, backend_name, workers, strategy
    ):
        virtual = backend_outcomes[("virtual", workers, strategy)]
        process = backend_outcomes[("process", workers, strategy)]
        assert frozenset(virtual.completed) == frozenset(process.completed)
        assert virtual.coverage() == process.coverage()
        assert virtual.report.busy_time_ms == pytest.approx(
            process.report.busy_time_ms, rel=1e-12
        )
        assert virtual.report.bucket_services == process.report.bucket_services
        assert virtual.bucket_reads == process.bucket_reads


class TestSingleWorkerExactness:
    """At one worker both backends must reproduce the serial engine exactly."""

    @pytest.mark.parametrize("backend_name", ("virtual", "process"))
    def test_response_times_match_serial(
        self, backend_outcomes, serial_reference, backend_name
    ):
        outcome = backend_outcomes[(backend_name, 1, "round_robin")]
        serial = serial_reference["report"]
        assert outcome.report.response_times_ms.keys() == serial.response_times_ms.keys()
        for query_id, expected in serial.response_times_ms.items():
            assert outcome.report.response_times_ms[query_id] == pytest.approx(
                expected, rel=1e-12
            )
        assert outcome.report.makespan_ms == pytest.approx(serial.makespan_ms, rel=1e-12)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestOpenSystemTimelineParity:
    """With stealing off, each shard is a pure function of its arrival
    schedule, so the process backend must reproduce the virtual backend's
    per-shard timelines bit for bit — starts, finishes, batch composition."""

    def test_exact_batch_timelines(
        self, layout, sim_config, engine_config, timed_queries, workers, strategy
    ):
        def run(backend_name):
            spec = build_spec(
                layout,
                sim_config,
                engine_config,
                timed_queries,
                workers,
                strategy,
                enable_stealing=False,
            )
            return make_backend(backend_name).execute(spec)

        virtual = run("virtual")
        process = run("process")

        def timeline(outcome):
            return sorted(
                (
                    record.worker_id,
                    record.seq,
                    record.bucket_index,
                    record.queries_served,
                    round(record.started_at_ms, 6),
                    round(record.finished_at_ms, 6),
                )
                for record in outcome.services
            )

        assert timeline(virtual) == timeline(process)
        assert virtual.report.response_times_ms.keys() == (
            process.report.response_times_ms.keys()
        )
        for query_id, expected in virtual.report.response_times_ms.items():
            assert process.report.response_times_ms[query_id] == pytest.approx(
                expected, rel=1e-9
            )
        assert virtual.report.makespan_ms == pytest.approx(
            process.report.makespan_ms, rel=1e-9
        )


class TestProcessBackendStealing:
    """Work stealing as message passing: a skewed closed batch must migrate
    queues between processes without losing or duplicating any service."""

    def test_steals_preserve_accounting(
        self, layout, sim_config, engine_config, serial_reference, batch_queries
    ):
        # A tight steal window forces frequent barriers so queue migration
        # definitely happens on this small batch.
        spec = build_spec(
            layout,
            sim_config,
            engine_config,
            batch_queries,
            4,
            "zone",
            steal_quantum_ms=sim_config.cost.tb_ms * 2,
        )
        outcome = ProcessBackend().execute(spec)
        assert outcome.steal_records, "expected steals on zone-sharded skew"
        for record in outcome.steal_records:
            assert record.entry_count > 0
            assert record.victim_id != record.thief_id
        assert frozenset(outcome.completed) == serial_reference["completed"]
        assert outcome.report.busy_time_ms == pytest.approx(
            serial_reference["report"].busy_time_ms, rel=1e-12
        )

    def test_parallel_report_is_consistent(
        self, layout, sim_config, engine_config, batch_queries
    ):
        spec = build_spec(
            layout, sim_config, engine_config, batch_queries, 4, "round_robin"
        )
        outcome = ProcessBackend().execute(spec)
        preport = outcome.parallel
        assert preport.workers == 4
        assert preport.aggregate_busy_ms == pytest.approx(
            outcome.report.busy_time_ms, rel=1e-12
        )
        assert preport.wall_clock_ms == max(preport.worker_clocks_ms)
        assert sum(preport.worker_services) == outcome.report.bucket_services
        assert preport.steals == len(outcome.steal_records)
        assert outcome.real_elapsed_s > 0.0


class TestSimulatorBackendSelection:
    """`RunSpec.backend` exposes the seam end to end."""

    def test_virtual_and_process_agree_through_simulator(self, timed_queries):
        simulator = Simulator(SimulationConfig(bucket_count=BUCKETS))
        virtual = simulator.execute(
            timed_queries, RunSpec(workers=2, enable_stealing=False)
        )
        process = simulator.execute(
            timed_queries,
            RunSpec(workers=2, enable_stealing=False, backend="process"),
        )
        assert virtual.backend == "virtual"
        assert process.backend == "process"
        assert virtual.completed_queries == process.completed_queries
        assert virtual.busy_time_s == pytest.approx(process.busy_time_s, rel=1e-9)
        assert virtual.avg_response_time_s == pytest.approx(
            process.avg_response_time_s, rel=1e-9
        )
        assert virtual.bucket_reads == process.bucket_reads
        assert process.real_elapsed_s > 0.0

    def test_unknown_backend_rejected(self, timed_queries):
        simulator = Simulator(SimulationConfig(bucket_count=BUCKETS))
        with pytest.raises(ValueError, match="unknown execution backend"):
            simulator.execute(timed_queries, RunSpec(backend="quantum"))


class TestBackendEvents:
    """Merged per-worker event logs stay consistent on the process backend."""

    @pytest.mark.parametrize("backend_name", ("virtual", "process"))
    def test_event_counts(self, backend_outcomes, backend_name):
        from repro.sim.events import EventKind

        outcome = backend_outcomes[(backend_name, 2, "zone")]
        counts = outcome.events.counts_by_kind()
        assert counts[EventKind.SERVICE_COMPLETE] == outcome.report.bucket_services
        assert counts.get(EventKind.WORK_STOLEN, 0) == len(outcome.steal_records)
        assert counts[EventKind.QUERY_ARRIVAL] >= outcome.report.submitted_queries
        merged = outcome.events.merged()
        times = [event.time_ms for _worker, event in merged]
        assert times == sorted(times)
