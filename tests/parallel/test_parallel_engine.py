"""ParallelEngine behaviour: parity, correctness, stealing and scaling."""

import pytest

from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.experiments.common import build_trace
from repro.parallel import ParallelEngine
from repro.sim.events import EventKind
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import BucketPartitioner
from repro.workload.generator import TraceConfig, TraceGenerator
from repro.workload.query import CrossMatchQuery

BUCKETS = 128


@pytest.fixture(scope="module")
def layout():
    partitioner = BucketPartitioner()
    return partitioner.partition_density(BUCKETS)


@pytest.fixture(scope="module")
def queries():
    config = TraceConfig(query_count=80, bucket_count=BUCKETS, seed=99)
    return TraceGenerator(config).generate().with_saturation(2.0).queries


def build_engine(layout, kind="parallel", workers=1, **kwargs):
    config = SimulationConfig(bucket_count=BUCKETS)
    disk = calibrated_disk_for_bucket_read(
        config.bucket_megabytes, config.cost.tb_ms / 1000.0
    )
    store = BucketStore(layout, disk)
    index = SpatialIndex([], rows=None, disk=None)
    engine_config = EngineConfig(cache_buckets=config.cache_buckets, cost=config.cost)
    scheduler = LifeRaftScheduler(SchedulerConfig(cost=config.cost))
    if kind == "serial":
        return LifeRaftEngine(
            layout, store, scheduler=scheduler, index=index, config=engine_config
        )
    return ParallelEngine(
        layout,
        store,
        workers=workers,
        scheduler=scheduler,
        index=index,
        config=engine_config,
        **kwargs,
    )


class TestSingleWorkerParity:
    """A 1-worker ParallelEngine must reproduce the serial engine exactly."""

    def test_report_matches_serial(self, layout, queries):
        serial = build_engine(layout, "serial")
        parallel = build_engine(layout, "parallel", workers=1)
        for query in queries:
            serial.submit(query)
            parallel.submit(query)
        serial.run_until_idle()
        parallel.run_until_idle()
        serial_report = serial.report()
        parallel_report = parallel.report()
        assert set(parallel_report.response_times_ms) == set(
            serial_report.response_times_ms
        )
        assert parallel_report.completed_queries == serial_report.completed_queries
        assert parallel_report.busy_time_ms == pytest.approx(
            serial_report.busy_time_ms, rel=1e-12
        )
        for query_id, serial_rt in serial_report.response_times_ms.items():
            assert parallel_report.response_times_ms[query_id] == pytest.approx(
                serial_rt, rel=1e-12
            )
        assert parallel_report.bucket_services == serial_report.bucket_services
        assert parallel_report.strategy_counts == serial_report.strategy_counts
        assert parallel_report.cache_hit_rate == pytest.approx(
            serial_report.cache_hit_rate
        )
        assert parallel_report.makespan_ms == pytest.approx(serial_report.makespan_ms)

    def test_open_system_parity_through_simulator(self, queries):
        simulator = Simulator(SimulationConfig(bucket_count=BUCKETS))
        serial = simulator.execute(queries, RunSpec(alpha=0.25))
        parallel = simulator.execute(queries, RunSpec(alpha=0.25, backend="virtual"))
        assert parallel.completed_queries == serial.completed_queries
        assert parallel.busy_time_s == pytest.approx(serial.busy_time_s, rel=1e-12)
        assert parallel.avg_response_time_s == pytest.approx(
            serial.avg_response_time_s, rel=1e-12
        )
        assert parallel.bucket_reads == serial.bucket_reads


class TestCorrectness:
    def test_all_queries_complete_once(self, layout, queries):
        engine = build_engine(layout, workers=4)
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        report = engine.report()
        assert report.completed_queries == report.submitted_queries
        completed = engine.completed_queries()
        assert len(completed) == len(set(completed)), "a query completed twice"

    def test_no_bucket_entry_served_twice(self, layout, queries):
        """Each (query, bucket) workload entry is drained exactly once."""
        engine = build_engine(layout, workers=4)
        expected = {}
        for query in queries:
            engine.submit(query)
            for bucket in engine.preprocessor.footprint(query):
                expected[(query.query_id, bucket)] = 0
        engine.run_until_idle()
        for worker in engine.workers:
            for batch in worker.loop.batches:
                bucket = batch.work_item.bucket_index
                for query_id in batch.queries_served:
                    expected[(query_id, bucket)] += 1
        assert all(count == 1 for count in expected.values()), (
            "some (query, bucket) pairs were serviced "
            f"{sorted(v for v in set(expected.values()) if v != 1)} times"
        )

    def test_worker_clocks_never_run_backwards(self, layout, queries):
        engine = build_engine(layout, workers=4)
        for query in queries:
            engine.submit(query)
        clocks = {w.worker_id: w.now_ms for w in engine.workers}
        while True:
            outcome = engine.step()
            if outcome is None:
                break
            for worker in engine.workers:
                assert worker.now_ms >= clocks[worker.worker_id] - 1e-9
                clocks[worker.worker_id] = worker.now_ms

    def test_duplicate_submission_rejected(self, layout, queries):
        engine = build_engine(layout, workers=2)
        engine.submit(queries[0])
        with pytest.raises(ValueError, match="already submitted"):
            engine.submit(queries[0])

    def test_zone_sharding_completes_everything(self, layout, queries):
        engine = build_engine(layout, workers=4, shard_strategy="zone")
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        report = engine.report()
        assert report.completed_queries == report.submitted_queries


class TestWorkStealing:
    def test_steals_happen_on_skewed_shards(self, layout, queries):
        """Zone sharding over a skewed trace leaves some workers idle, so
        stealing must kick in — and everything still completes."""
        engine = build_engine(layout, workers=4, shard_strategy="zone")
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        assert engine.steal_log, "expected at least one steal on a skewed workload"
        assert engine.report().completed_queries == len(
            {q.query_id for q in queries}
        )

    def test_stealing_disabled_means_no_steals(self, layout, queries):
        engine = build_engine(
            layout, workers=4, shard_strategy="zone", enable_stealing=False
        )
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        assert not engine.steal_log
        assert engine.report().completed_queries == engine.report().submitted_queries

    def test_steal_improves_service_start(self, layout, queries):
        """Every recorded steal must start the queue before the victim could."""
        engine = build_engine(layout, workers=4, shard_strategy="zone")
        for query in queries:
            engine.submit(query)
        victim_clocks = {}
        while True:
            for worker in engine.workers:
                victim_clocks[worker.worker_id] = worker.now_ms
            before = len(engine.steal_log)
            outcome = engine.step()
            for record in engine.steal_log[before:]:
                assert record.time_ms < victim_clocks[record.victim_id]
            if outcome is None:
                break

    def test_stealing_does_not_lose_or_duplicate_completions(self, layout, queries):
        with_steal = build_engine(layout, workers=4, shard_strategy="zone")
        without = build_engine(
            layout, workers=4, shard_strategy="zone", enable_stealing=False
        )
        for query in queries:
            with_steal.submit(query)
            without.submit(query)
        with_steal.run_until_idle()
        without.run_until_idle()
        assert sorted(with_steal.completed_queries()) == sorted(
            without.completed_queries()
        )


class TestConstructedSkewStealing:
    """A hand-built skewed workload: one worker runs dry immediately while
    the other holds several deep bucket queues, forcing a steal whose
    mechanics we can assert exactly."""

    HEAVY_BUCKETS = (0, 2, 4)  # all owned by worker 0 under 2-way round robin
    HEAVY_QUERIES = 6

    def build_skewed_engine(self):
        partitioner = BucketPartitioner()
        layout = partitioner.partition_density(8)
        config = SimulationConfig(bucket_count=8)
        disk = calibrated_disk_for_bucket_read(
            config.bucket_megabytes, config.cost.tb_ms / 1000.0
        )
        engine = ParallelEngine(
            layout,
            BucketStore(layout, disk),
            workers=2,
            scheduler=LifeRaftScheduler(SchedulerConfig(cost=config.cost)),
            index=SpatialIndex([], rows=None, disk=None),
            config=EngineConfig(cache_buckets=config.cache_buckets, cost=config.cost),
            shard_strategy="round_robin",
        )
        queries = [
            CrossMatchQuery(
                query_id=i,
                bucket_footprint={bucket: 50 for bucket in self.HEAVY_BUCKETS},
                arrival_time_s=0.0,
            )
            for i in range(self.HEAVY_QUERIES)
        ]
        # One tiny query for worker 1 (bucket 1), so it runs dry at once.
        queries.append(
            CrossMatchQuery(
                query_id=self.HEAVY_QUERIES, bucket_footprint={1: 1}, arrival_time_s=0.0
            )
        )
        return engine, queries

    def test_starved_worker_emits_steal_record(self):
        engine, queries = self.build_skewed_engine()
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        assert engine.steal_log, "the dry worker must steal from the loaded one"
        record = engine.steal_log[0]
        assert record.victim_id == 0
        assert record.thief_id == 1
        assert record.bucket_index in self.HEAVY_BUCKETS
        assert record.entry_count == self.HEAVY_QUERIES

    def test_stolen_queue_migrates_whole(self):
        """The thief services the stolen bucket in ONE batch carrying every
        entry of the migrated queue — batching is never split."""
        engine, queries = self.build_skewed_engine()
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        for record in engine.steal_log:
            thief_batches = [
                batch
                for batch in engine.workers[record.thief_id].loop.batches
                if batch.work_item.bucket_index == record.bucket_index
            ]
            assert len(thief_batches) == 1
            assert len(thief_batches[0].queries_served) == record.entry_count
            victim_batches = [
                batch
                for batch in engine.workers[record.victim_id].loop.batches
                if batch.work_item.bucket_index == record.bucket_index
            ]
            assert not victim_batches, "the victim serviced a stolen bucket"

    def test_no_query_serviced_twice_despite_steals(self):
        engine, queries = self.build_skewed_engine()
        expected = {}
        for query in queries:
            engine.submit(query)
            for bucket in engine.preprocessor.footprint(query):
                expected[(query.query_id, bucket)] = 0
        engine.run_until_idle()
        for worker in engine.workers:
            for batch in worker.loop.batches:
                for query_id in batch.queries_served:
                    expected[(query_id, batch.work_item.bucket_index)] += 1
        assert all(count == 1 for count in expected.values())
        report = engine.report()
        assert report.completed_queries == len(queries)


class TestStealOwnershipTransfer:
    def test_future_arrivals_follow_stolen_bucket(self, layout, queries):
        """After a steal, new work for that bucket goes to the thief, so one
        bucket's queue is never split across two shards."""
        engine = build_engine(layout, workers=4, shard_strategy="zone")
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        assert engine.steal_log
        # Replay: for every serviced batch, the bucket must have been
        # serviced by exactly one worker at any one time — count how many
        # distinct workers ever serviced each bucket and confirm each
        # service drained a queue that lived wholly on that worker.
        for record in engine.steal_log:
            assert engine._adopted_owner[record.bucket_index] in {
                r.thief_id
                for r in engine.steal_log
                if r.bucket_index == record.bucket_index
            }

    def test_arrival_order_policy_with_stealing_completes(self, layout, queries):
        """NoShare (per-query, arrival-order) + stealing must not strand
        adopted work behind the arrival cursor (regression test)."""
        from repro.core.baselines import NoShareScheduler

        config = SimulationConfig(bucket_count=BUCKETS)
        disk = calibrated_disk_for_bucket_read(
            config.bucket_megabytes, config.cost.tb_ms / 1000.0
        )
        store = BucketStore(layout, disk)
        engine = ParallelEngine(
            layout,
            store,
            workers=4,
            scheduler=NoShareScheduler(),
            index=SpatialIndex([], rows=None, disk=None),
            config=EngineConfig(cache_buckets=config.cache_buckets, cost=config.cost),
            shard_strategy="zone",
        )
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        report = engine.report()
        assert not engine.has_pending_work(), "work stranded behind the cursor"
        assert report.completed_queries == report.submitted_queries


class TestDeterminism:
    def test_same_seed_same_run(self, layout):
        def run_once():
            config = TraceConfig(query_count=60, bucket_count=BUCKETS, seed=5)
            trace_queries = (
                TraceGenerator(config).generate().with_saturation(2.0).queries
            )
            engine = build_engine(layout, workers=4)
            for query in trace_queries:
                engine.submit(query)
            engine.run_until_idle()
            report = engine.report()
            return (
                engine.completed_queries(),
                report.busy_time_ms,
                report.makespan_ms,
                [w.steals for w in engine.workers],
                [len(w.loop.batches) for w in engine.workers],
            )

        assert run_once() == run_once()


class TestEventStreams:
    def test_events_cover_arrivals_services_and_steals(self, layout, queries):
        engine = build_engine(layout, workers=4, shard_strategy="zone")
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        counts = engine.events.counts_by_kind()
        assert counts[EventKind.QUERY_ARRIVAL] >= len(queries)
        assert counts[EventKind.SERVICE_COMPLETE] == engine.report().bucket_services
        assert counts.get(EventKind.WORK_STOLEN, 0) == len(engine.steal_log)
        merged = engine.events.merged()
        times = [event.time_ms for _worker, event in merged]
        assert times == sorted(times)


class TestScaling:
    def test_throughput_improves_monotonically_to_four_workers(self):
        trace = build_trace("small", seed=13)
        saturated = trace.with_saturation(8.0).queries
        simulator = Simulator(SimulationConfig(bucket_count=512))
        throughputs = []
        for workers in (1, 2, 4):
            result = simulator.execute(
                saturated, RunSpec(alpha=0.25, workers=workers, backend="virtual")
            )
            throughputs.append(result.throughput_qps)
        assert throughputs[0] < throughputs[1] < throughputs[2]

    def test_parallel_report_metrics(self, layout, queries):
        engine = build_engine(layout, workers=4)
        for query in queries:
            engine.submit(query)
        engine.run_until_idle()
        preport = engine.parallel_report()
        assert preport.workers == 4
        assert preport.aggregate_busy_ms == pytest.approx(
            engine.report().busy_time_ms
        )
        assert preport.wall_clock_ms == max(preport.worker_clocks_ms)
        assert 0.0 < preport.utilisation <= 1.0
        assert sum(preport.worker_services) == engine.report().bucket_services
