"""Shard-plan construction: coverage, balance and determinism."""

import random

import pytest

from repro.htm.curve import HTMRange
from repro.parallel.sharding import (
    SHARD_STRATEGIES,
    make_shard_plan,
    partition_round_robin,
    partition_zones,
)
from repro.storage.partitioner import BucketPartitioner, BucketSpec, PartitionLayout


def build_layout(bucket_count=64, densities=None):
    partitioner = BucketPartitioner(objects_per_bucket=100, bucket_megabytes=1.0)
    return partitioner.partition_density(bucket_count, densities=densities)


def random_layout(seed, max_buckets=96):
    """A layout with randomly skewed per-bucket object populations."""
    rng = random.Random(seed)
    bucket_count = rng.randint(8, max_buckets)
    specs = []
    cursor = 0
    for index in range(bucket_count):
        width = rng.randint(1, 50)
        count = rng.randint(1, 5_000)
        specs.append(
            BucketSpec(index, HTMRange(cursor, cursor + width - 1), count, count / 100.0)
        )
        cursor += width
    return PartitionLayout(specs, leaf_level=10)


class TestRoundRobin:
    def test_every_bucket_owned_exactly_once(self):
        layout = build_layout(64)
        plan = partition_round_robin(layout, 4)
        assert len(plan.owners) == len(layout)
        seen = [bucket for worker in range(4) for bucket in plan.buckets_of(worker)]
        assert sorted(seen) == list(range(len(layout)))

    def test_modular_assignment(self):
        plan = partition_round_robin(build_layout(10), 3)
        assert plan.owners == (0, 1, 2, 0, 1, 2, 0, 1, 2, 0)

    def test_balanced_within_one_bucket(self):
        plan = partition_round_robin(build_layout(65), 4)
        counts = plan.bucket_counts()
        assert max(counts) - min(counts) <= 1

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            partition_round_robin(build_layout(8), 0)


class TestZones:
    def test_zones_are_contiguous(self):
        layout = build_layout(64)
        plan = partition_zones(layout, 4)
        # Owners must be non-decreasing along the curve: each worker owns
        # one contiguous run of buckets.
        assert list(plan.owners) == sorted(plan.owners)

    def test_every_worker_owns_at_least_one_bucket(self):
        for workers in (1, 2, 3, 7, 16):
            plan = partition_zones(build_layout(16), workers)
            assert all(count >= 1 for count in plan.bucket_counts())

    def test_object_population_roughly_balanced(self):
        layout = build_layout(64)
        plan = partition_zones(layout, 4)
        totals = [0] * 4
        for bucket in layout:
            totals[plan.owner_of(bucket.index)] += bucket.object_count
        expected = layout.total_objects() / 4
        for total in totals:
            assert total == pytest.approx(expected, rel=0.25)

    def test_more_workers_than_buckets_rejected(self):
        with pytest.raises(ValueError):
            partition_zones(build_layout(4), 5)


class TestDeterminism:
    @pytest.mark.parametrize("strategy", sorted(SHARD_STRATEGIES))
    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_same_inputs_same_plan(self, strategy, workers):
        layout_a = build_layout(48)
        layout_b = build_layout(48)
        plan_a = make_shard_plan(layout_a, workers, strategy)
        plan_b = make_shard_plan(layout_b, workers, strategy)
        assert plan_a.owners == plan_b.owners
        assert plan_a.strategy == strategy
        assert plan_a.worker_count == workers

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown shard strategy"):
            make_shard_plan(build_layout(8), 2, "hash")


class TestPartitionProperties:
    """Property-style checks: every plan must be a consistent partition.

    For randomly skewed layouts and every worker count 1–8, both
    strategies must assign every bucket to exactly one worker, with
    ``owner_of`` and ``buckets_of`` two views of the same assignment.
    """

    @pytest.mark.parametrize("strategy", sorted(SHARD_STRATEGIES))
    @pytest.mark.parametrize("seed", range(12))
    def test_plan_is_a_partition(self, strategy, seed):
        layout = random_layout(seed)
        for workers in range(1, 9):
            if workers > len(layout):
                continue
            plan = make_shard_plan(layout, workers, strategy)
            # owner_of covers every bucket with an in-range worker id.
            owners = [plan.owner_of(index) for index in range(len(layout))]
            assert all(0 <= owner < workers for owner in owners)
            # buckets_of partitions the bucket range: disjoint and complete.
            claimed = []
            for worker_id in range(workers):
                claimed.extend(plan.buckets_of(worker_id))
            assert sorted(claimed) == list(range(len(layout))), (
                f"{strategy} with {workers} workers on seed {seed} is not a partition"
            )
            assert len(claimed) == len(set(claimed)), "a bucket has two owners"
            # The two views agree bucket by bucket.
            for worker_id in range(workers):
                for bucket_index in plan.buckets_of(worker_id):
                    assert plan.owner_of(bucket_index) == worker_id
            # Every worker owns at least one bucket and the counts add up.
            counts = plan.bucket_counts()
            assert sum(counts) == len(layout)
            assert all(count >= 1 for count in counts)

    @pytest.mark.parametrize("seed", range(6))
    def test_zone_plans_stay_contiguous_under_skew(self, seed):
        layout = random_layout(seed)
        for workers in range(1, min(9, len(layout) + 1)):
            plan = partition_zones(layout, workers)
            assert list(plan.owners) == sorted(plan.owners), (
                "zone ownership must be non-decreasing along the curve"
            )

    @pytest.mark.parametrize("strategy", sorted(SHARD_STRATEGIES))
    @pytest.mark.parametrize("seed", range(6))
    def test_plans_are_deterministic_functions_of_inputs(self, strategy, seed):
        for workers in (1, 3, 8):
            first = make_shard_plan(random_layout(seed), workers, strategy)
            second = make_shard_plan(random_layout(seed), workers, strategy)
            assert first.owners == second.owners


class TestShardPlan:
    def test_owner_range_validated(self):
        from repro.parallel.sharding import ShardPlan

        with pytest.raises(ValueError):
            ShardPlan("round_robin", 2, (0, 1, 2))

    def test_describe_reports_balance(self):
        plan = partition_round_robin(build_layout(10), 4)
        summary = plan.describe()
        assert summary["worker_count"] == 4.0
        assert summary["bucket_count"] == 10.0
        assert summary["min_buckets"] == 2.0
        assert summary["max_buckets"] == 3.0
