"""Benchmark of the serving experiment (front-end + result streaming).

Regenerates the serving table — time-to-first-result, time-to-completion
and rejection rate across the alpha sweep — and records every per-alpha
number in the benchmark JSON artifact through ``extra_info``, so the
serving trade-off curve ships with each CI run.
"""

from benchmarks.conftest import record_headline
from repro.experiments import serving


def test_bench_serving_alpha_sweep(benchmark, trace, simulator):
    result = benchmark.pedantic(
        serving.run,
        kwargs={"trace": trace, "simulator": simulator},
        rounds=1,
        iterations=1,
    )
    record_headline(benchmark, result)
    headline = result.headline
    for alpha in serving.ALPHA_SWEEP:
        suffix = f"alpha{alpha:g}"
        ttfr = headline[f"ttfr_s_{suffix}"]
        ttc = headline[f"ttc_s_{suffix}"]
        rejection = headline[f"rejection_rate_{suffix}"]
        # Incremental evaluation must deliver first results before full
        # answers at every alpha, and the saturated replay must shed a
        # real (but not total) fraction of the offered load.
        assert 0.0 < ttfr < ttc
        assert 0.0 < rejection < 1.0
    # The starvation knob is the serving trade-off: contention-driven
    # scheduling (alpha=0) must reach first results sooner than strict
    # arrival order (alpha=1), which drains whole queries at a time.
    assert headline["ttfr_s_alpha0"] < headline["ttfr_s_alpha1"]
