"""Benchmark ratchet: compare two ``--bench-json`` snapshots, fail on regression.

The committed baselines (``BENCH_storage.json``, ``BENCH_parallel.json`` at
the repository root) pin the performance the storage and parallel subsystems
have already demonstrated.  CI reruns the same benchmarks, writes a candidate
snapshot with ``--bench-json``, and this module compares the two::

    python -m benchmarks.ratchet BENCH_storage.json candidate.json

A candidate fails when any ratcheted metric falls more than ``--tolerance``
(default 15%) below the baseline, or when a baselined benchmark disappears
from the candidate run.  Only metrics named in :data:`RATCHETED_METRICS` are
compared: virtual-clock speedups are deterministic and must never drift;
the wall-clock throughput rates are the numbers the zero-copy columnar read
path exists for, and the tolerance absorbs machine-to-machine noise.
Metrics absent from the baseline entry are ignored, so new measurements can
be introduced without invalidating old snapshots.

To advance the ratchet after a real improvement, regenerate the baseline::

    pytest benchmarks/test_bench_storage.py --bench-json BENCH_storage.json

and commit the result.  Never regenerate it to paper over a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: Metric name -> direction.  ``higher`` means the candidate must not fall
#: more than the tolerance below the baseline; ``lower`` the reverse.
RATCHETED_METRICS: Dict[str, str] = {
    # storage: zero-copy read path and ingest
    "read_decode_mb_per_s": "higher",
    "columnar_decode_mb_per_s": "higher",
    "columnar_rows_per_s": "higher",
    "ingest_rows_per_s": "higher",
    # parallel: virtual-clock scaling quality (deterministic)
    "speedup_2x": "higher",
    "speedup_4x": "higher",
}

#: Default allowed relative regression before the ratchet fails.
DEFAULT_TOLERANCE = 0.15


def load_snapshot(path: str) -> dict:
    """Read one ``--bench-json`` snapshot, validating its shape."""
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or "benchmarks" not in snapshot:
        raise SystemExit(f"{path}: not a bench snapshot (missing 'benchmarks' key)")
    return snapshot


def compare(
    baseline: dict, candidate: dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[List[str], List[str]]:
    """Compare *candidate* against *baseline*.

    Returns ``(failures, report)``: human-readable failure lines (empty when
    the ratchet holds) and a line-per-metric comparison report.
    """
    failures: List[str] = []
    report: List[str] = []
    base_scale = baseline.get("scale")
    cand_scale = candidate.get("scale")
    if base_scale != cand_scale:
        failures.append(
            f"scale mismatch: baseline ran at {base_scale!r}, candidate at "
            f"{cand_scale!r} — the comparison is meaningless"
        )
        return failures, report
    for name, base_entry in sorted(baseline["benchmarks"].items()):
        cand_entry = candidate["benchmarks"].get(name)
        if cand_entry is None:
            failures.append(f"{name}: present in baseline but missing from candidate run")
            continue
        base_info = base_entry.get("extra_info", {})
        cand_info = cand_entry.get("extra_info", {})
        for metric, direction in RATCHETED_METRICS.items():
            if metric not in base_info:
                continue
            base_value = float(base_info[metric])
            if metric not in cand_info:
                failures.append(f"{name}: candidate no longer records {metric}")
                continue
            cand_value = float(cand_info[metric])
            if base_value == 0.0:
                continue
            if direction == "higher":
                ratio = cand_value / base_value
                regressed = ratio < 1.0 - tolerance
            else:
                ratio = base_value / cand_value if cand_value else 0.0
                regressed = ratio < 1.0 - tolerance
            verdict = "REGRESSED" if regressed else "ok"
            report.append(
                f"{name}.{metric}: baseline {base_value:g}, candidate "
                f"{cand_value:g} ({ratio:.2f}x) {verdict}"
            )
            if regressed:
                failures.append(
                    f"{name}: {metric} regressed beyond {tolerance:.0%} — "
                    f"baseline {base_value:g}, candidate {cand_value:g}"
                )
    return failures, report


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.ratchet",
        description="Fail when a candidate bench snapshot regresses past the baseline.",
    )
    parser.add_argument("baseline", help="committed baseline snapshot (BENCH_*.json)")
    parser.add_argument("candidate", help="candidate snapshot from --bench-json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative regression before failing (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    failures, report = compare(
        load_snapshot(args.baseline), load_snapshot(args.candidate), args.tolerance
    )
    for line in report:
        print(line)
    if failures:
        print()
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(f"ratchet holds (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
