"""Benchmark for the design-choice ablations called out in DESIGN.md."""

from benchmarks.conftest import record_headline
from repro.experiments import ablations


def test_bench_ablations(benchmark, trace):
    result = benchmark.pedantic(ablations.run, kwargs={"trace": trace}, rounds=1, iterations=1)
    record_headline(benchmark, result)
    # Most-contentious-first should not lose to least-sharable-first on this
    # workload (the §6 argument for LifeRaft's policy).
    assert (
        result.headline["throughput_liferaft"]
        >= result.headline["throughput_least_sharable_first"] * 0.95
    )
    # A larger cache never hurts the greedy scheduler.
    assert (
        result.headline["throughput_cache_20"] >= result.headline["throughput_cache_5"] * 0.9
    )
