"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through the
corresponding :mod:`repro.experiments` module and reports the measured
headline numbers through pytest-benchmark's ``extra_info`` so that the
paper-vs-measured comparison appears directly in the benchmark output.

Benchmarks default to the "small" experiment scale so the whole suite runs
in a couple of minutes; set ``LIFERAFT_BENCH_SCALE=default`` (or ``full``)
to rerun them closer to the paper's trace size.
"""

import os

import pytest

from repro.experiments.common import build_simulator, build_trace


def bench_scale() -> str:
    """Experiment scale used by the benchmark suite."""
    return os.environ.get("LIFERAFT_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def trace(scale):
    """One trace shared by every scheduling benchmark (generation is costly)."""
    return build_trace(scale)


@pytest.fixture(scope="session")
def simulator(scale):
    """One simulator (partition layout) shared by every scheduling benchmark."""
    return build_simulator(scale)


def record_headline(benchmark, result) -> None:
    """Attach an experiment's headline numbers to the benchmark report."""
    for key, value in result.headline.items():
        benchmark.extra_info[key] = round(float(value), 6)
    benchmark.extra_info["experiment"] = result.name
