"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through the
corresponding :mod:`repro.experiments` module and reports the measured
headline numbers through pytest-benchmark's ``extra_info`` so that the
paper-vs-measured comparison appears directly in the benchmark output.

Benchmarks default to the "small" experiment scale so the whole suite runs
in a couple of minutes; set ``LIFERAFT_BENCH_SCALE=default`` (or ``full``)
to rerun them closer to the paper's trace size.

Passing ``--bench-json PATH`` (registered in the repository-root conftest)
writes a compact snapshot of the run — one entry per benchmark with its
best round timing and every ``extra_info`` headline metric.  The committed
``BENCH_storage.json`` / ``BENCH_parallel.json`` baselines are such
snapshots; ``python -m benchmarks.ratchet`` compares a candidate snapshot
against a baseline and fails on regression.
"""

import json
import os

import pytest

from repro.experiments.common import build_simulator, build_trace


def bench_scale() -> str:
    """Experiment scale used by the benchmark suite."""
    return os.environ.get("LIFERAFT_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def trace(scale):
    """One trace shared by every scheduling benchmark (generation is costly)."""
    return build_trace(scale)


@pytest.fixture(scope="session")
def simulator(scale):
    """One simulator (partition layout) shared by every scheduling benchmark."""
    return build_simulator(scale)


def record_headline(benchmark, result) -> None:
    """Attach an experiment's headline numbers to the benchmark report."""
    for key, value in result.headline.items():
        benchmark.extra_info[key] = round(float(value), 6)
    benchmark.extra_info["experiment"] = result.name


def pytest_sessionfinish(session, exitstatus):
    """Write the ``--bench-json`` snapshot once the benchmark run is over."""
    path = session.config.getoption("--bench-json", default=None)
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = {}
    if bench_session is not None:
        for meta in bench_session.benchmarks:
            entry = {"extra_info": dict(sorted(meta.extra_info.items()))}
            if meta.stats.rounds:
                entry["min_s"] = round(meta.stats.min, 6)
            benchmarks[meta.name] = entry
    snapshot = {"scale": bench_scale(), "benchmarks": benchmarks}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
