"""Benchmark of the worker-scaling experiment (parallel shard execution)."""

from benchmarks.conftest import record_headline
from repro.experiments import scaling


def test_bench_parallel_scaling(benchmark, trace, simulator):
    result = benchmark.pedantic(
        scaling.run,
        kwargs={"trace": trace, "simulator": simulator, "workers": (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    record_headline(benchmark, result)
    # Sharded execution with work stealing should scale: two workers must
    # beat one by a clear margin, and four must beat two.
    assert result.headline["speedup_2x"] > 1.4
    assert result.headline["speedup_4x"] > result.headline["speedup_2x"]


def test_bench_parallel_zone_sharding(benchmark, trace, simulator):
    result = benchmark.pedantic(
        scaling.run,
        kwargs={
            "trace": trace,
            "simulator": simulator,
            "workers": (1, 4),
            "shard_strategy": "zone",
        },
        rounds=1,
        iterations=1,
    )
    record_headline(benchmark, result)
    # Zone sharding preserves cache locality; with stealing it must still
    # deliver a real speedup at four workers.
    assert result.headline["speedup_4x"] > 1.5
