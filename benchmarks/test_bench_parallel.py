"""Benchmarks of the worker-scaling experiment (parallel shard execution).

Two backends are measured: the deterministic in-process interleaver
(virtual-time speedup — scheduling quality) and the multiprocessing
backend (real wall-clock speedup — hardware parallelism).  Virtual-clock
numbers are backend-invariant (pinned by the cross-backend parity tests),
so the two benchmarks together separate "the schedule scales" from "the
hardware delivers it".
"""

import os

from benchmarks.conftest import record_headline
from repro.experiments import scaling


def test_bench_parallel_scaling(benchmark, trace, simulator):
    result = benchmark.pedantic(
        scaling.run,
        kwargs={"trace": trace, "simulator": simulator, "workers": (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    record_headline(benchmark, result)
    # Sharded execution with work stealing should scale: two workers must
    # beat one by a clear margin, and four must beat two.
    assert result.headline["speedup_2x"] > 1.4
    assert result.headline["speedup_4x"] > result.headline["speedup_2x"]


def test_bench_parallel_zone_sharding(benchmark, trace, simulator):
    result = benchmark.pedantic(
        scaling.run,
        kwargs={
            "trace": trace,
            "simulator": simulator,
            "workers": (1, 4),
            "shard_strategy": "zone",
        },
        rounds=1,
        iterations=1,
    )
    record_headline(benchmark, result)
    # Zone sharding preserves cache locality; with stealing it must still
    # deliver a real speedup at four workers.
    assert result.headline["speedup_4x"] > 1.5


def test_bench_parallel_process_backend(benchmark):
    """Real wall-clock speedup from one OS process per shard worker.

    The headline records both the virtual-time speedup (must match the
    virtual backend's) and the measured wall-clock speedup of 4 worker
    processes over 1.  This benchmark uses a paper-sized partition (4,096
    buckets, 2,000 queries) regardless of the bench scale: per-service
    scheduler work grows with the pending-bucket count, so only a deep
    partition gives the worker processes enough real computation to
    amortise process startup.  The wall-clock assertion only makes sense
    when the host actually has cores to parallelise over, so it is gated
    on the CPU count; the JSON artifact records the measurement either
    way.
    """
    from repro.experiments.common import build_simulator, build_trace

    heavy_trace = build_trace("full")
    heavy_simulator = build_simulator("full")
    result = benchmark.pedantic(
        scaling.run,
        kwargs={
            "trace": heavy_trace,
            "simulator": heavy_simulator,
            "workers": (1, 4),
            "backend": "process",
        },
        rounds=1,
        iterations=1,
    )
    record_headline(benchmark, result)
    benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
    benchmark.extra_info["backend"] = "process"
    # Virtual-clock scheduling quality is backend-invariant.
    assert result.headline["speedup_4x"] > 1.5
    # The wall-clock measurement is always recorded in the bench JSON.
    assert "wall_speedup_4x" in result.headline
    assert result.headline["wall_speedup_4x"] > 0.0
    if (os.cpu_count() or 1) >= 4:
        # With real cores behind the processes, four shards must beat one
        # in measured wall-clock time.
        assert result.headline["wall_speedup_4x"] > 1.0
