"""Benchmark for the §6 claim about cache hit rates at alpha=0 vs alpha=1."""

from benchmarks.conftest import record_headline
from repro.experiments import cache_hits


def test_bench_cache_hit_rates(benchmark, trace, simulator):
    result = benchmark.pedantic(
        cache_hits.run, kwargs={"trace": trace, "simulator": simulator}, rounds=1, iterations=1
    )
    record_headline(benchmark, result)
    # Paper: ~40% of requests served from cache at alpha=0 vs ~7% at alpha=1.
    assert result.headline["hit_rate_alpha0"] > result.headline["hit_rate_alpha1"]
    assert result.headline["hit_rate_alpha0"] > 0.2
