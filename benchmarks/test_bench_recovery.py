"""Benchmarks of the checkpoint/recovery subsystem.

Two measurements over the materialised-store path (real page reads and
columnar decodes per service, so checkpoint I/O competes with real work):

* **steady-state overhead** — an every-window checkpoint cadence versus
  the same run with reliability off, reported as the relative wall-clock
  cost of durability with no crashes;
* **recovery cost** — a crash-injected run, reporting the real recovery
  latency and the re-executed services next to the parity-checked result.
"""

import pytest

from benchmarks.conftest import record_headline
from repro.experiments import recovery
from repro.experiments.common import build_simulator, build_trace
from repro.reliability import FaultPlan, ReliabilityConfig
from repro.sim.runspec import RunSpec
from repro.sim.simulator import VIRTUAL_CLOCK_PARITY_FIELDS, Simulator
from repro.storage.ingest import materialize_layout

#: Physical rows per bucket of the benchmark store.
BENCH_ROWS_PER_BUCKET = 128
#: Window quantum in bucket reads: several barriers per run.
WINDOW_BUCKET_READS = 4.0
WORKERS = 2


@pytest.fixture(scope="module")
def bench_setup(tmp_path_factory, scale):
    """A materialised store plus a saturated trace for the recovery benches."""
    simulator = build_simulator(scale)
    trace = build_trace(scale)
    path = tmp_path_factory.mktemp("bench-recovery") / "site.lrbs"
    materialize_layout(path, simulator.layout, rows_per_bucket=BENCH_ROWS_PER_BUCKET)
    replayed = trace.with_saturation(8.0)
    return Simulator(simulator.config, store_path=path), replayed


def test_bench_checkpoint_overhead(benchmark, bench_setup):
    """Every-window checkpointing vs no reliability: the price of durability."""
    simulator, trace = bench_setup
    quantum_ms = simulator.config.cost.tb_ms * WINDOW_BUCKET_READS
    baseline = simulator.execute(
        trace.queries,
        RunSpec(policy="liferaft", workers=WORKERS, enable_stealing=False),
    )

    def reliable_run():
        return simulator.execute(
            trace.queries,
            RunSpec(
                policy="liferaft",
                workers=WORKERS,
                enable_stealing=False,
                reliability=ReliabilityConfig(
                    cadence="windows:1", window_quantum_ms=quantum_ms
                ),
            ),
        )

    result = benchmark.pedantic(reliable_run, rounds=3, iterations=1)
    report = result.reliability
    assert report is not None
    assert report.checkpoints_written > 0
    assert report.crashes_injected == 0
    # Durability must not change a single virtual-clock number.
    for field in VIRTUAL_CLOCK_PARITY_FIELDS:
        assert getattr(result, field) == getattr(baseline, field), field
    benchmark.extra_info["checkpoints"] = report.checkpoints_written
    benchmark.extra_info["checkpoint_kib"] = round(report.checkpoint_bytes / 1024.0, 1)
    benchmark.extra_info["checkpoint_real_s"] = round(report.checkpoint_real_s, 4)
    if baseline.real_elapsed_s > 0:
        benchmark.extra_info["overhead_vs_plain"] = round(
            result.real_elapsed_s / baseline.real_elapsed_s, 3
        )


def test_bench_crash_recovery_latency(benchmark, bench_setup):
    """A crash-injected run: real recovery latency on the file-backed path."""
    simulator, trace = bench_setup
    quantum_ms = simulator.config.cost.tb_ms * WINDOW_BUCKET_READS
    baseline = simulator.execute(
        trace.queries,
        RunSpec(policy="liferaft", workers=WORKERS, enable_stealing=False),
    )

    def crashed_run():
        return simulator.execute(
            trace.queries,
            RunSpec(
                policy="liferaft",
                workers=WORKERS,
                enable_stealing=False,
                reliability=ReliabilityConfig(
                    cadence="windows:2",
                    faults=FaultPlan.parse("1@2"),
                    window_quantum_ms=quantum_ms,
                ),
            ),
        )

    result = benchmark.pedantic(crashed_run, rounds=3, iterations=1)
    report = result.reliability
    assert report is not None
    assert report.crashes_injected == 1
    assert report.recovery_count == 1
    for field in VIRTUAL_CLOCK_PARITY_FIELDS:
        assert getattr(result, field) == getattr(baseline, field), field
    benchmark.extra_info["recovery_real_s"] = round(report.recovery_real_s, 4)
    benchmark.extra_info["services_replayed"] = report.services_replayed


def test_bench_recovery_experiment(benchmark, scale):
    """The full cadence sweep, recorded for the JSON artifact."""
    result = benchmark.pedantic(
        recovery.run,
        kwargs={"scale": scale, "cadences": ("windows:1", "windows:8")},
        rounds=1,
        iterations=1,
    )
    record_headline(benchmark, result)
    assert all(row[-1] == "yes" for row in result.rows), "cadence sweep lost parity"
