"""Benchmarks of the on-disk bucket storage subsystem.

Two measurements: raw store throughput (ingest rate, sequential read +
decode rate — the physical analogue of the paper's ``Tb``), and the
worker-scaling experiment replayed against materialised on-disk buckets,
where the process backend's wall-clock speedup finally reflects real
storage work (seeks, reads, CRC checks, columnar decoding) rather than
cost-model arithmetic.
"""

import os
import time

import pytest

from benchmarks.conftest import record_headline
from repro.experiments import scaling
from repro.experiments.common import build_simulator, build_trace
from repro.storage.disk_store import open_disk_store
from repro.storage.format import BucketFileReader
from repro.storage.ingest import materialize_layout

#: Physical rows per bucket for the benchmark stores: enough bytes that a
#: bucket read is real work, small enough that ingest stays in seconds.
BENCH_ROWS_PER_BUCKET = 256


@pytest.fixture(scope="module")
def bench_store(tmp_path_factory, scale):
    """One ingested store file shared by the storage benchmarks."""
    simulator = build_simulator(scale)
    path = tmp_path_factory.mktemp("bench-store") / "site.lrbs"
    manifest = materialize_layout(path, simulator.layout, rows_per_bucket=BENCH_ROWS_PER_BUCKET)
    return manifest


def test_bench_store_read_throughput(benchmark, bench_store):
    """Sequential scan of every bucket page: seek, read, CRC, decode."""

    timings = []

    def scan():
        # Tier-2 disabled: every read is a physical page read + decode.
        with open_disk_store(bench_store.path, page_cache_buckets=0) as store:
            rows = 0
            for index in range(len(store.layout)):
                rows += len(store.bucket_image(index).objects)
            timings.append(store.real_read_s)
            return rows

    rows = benchmark.pedantic(scan, rounds=5, iterations=1)
    assert rows == bench_store.total_rows
    real_read_s = min(timings)
    megabytes = bench_store.file_bytes / 1e6
    benchmark.extra_info["file_megabytes"] = round(megabytes, 2)
    benchmark.extra_info["rows_decoded"] = rows
    if real_read_s > 0:
        # Best-of-rounds: the ratchet compares this number across machines,
        # so report capability, not scheduler noise.
        benchmark.extra_info["read_decode_mb_per_s"] = round(megabytes / real_read_s, 2)
    # Decoding a full site must stay interactive on one core.
    assert real_read_s < 60.0


def test_bench_store_columnar_scan(benchmark, bench_store):
    """Zero-copy columnar scan: mmap window, CRC check, column casts.

    This is the kernel-facing read path — every bucket page is checked and
    decoded into :class:`~repro.storage.format.ColumnBlock` column views,
    but no row objects are built.  The recorded throughput is the number
    the bench ratchet protects: it must stay well above the pre-columnar
    row-at-a-time decode rate (~22 MB/s on the reference container).
    """

    timings = []

    def scan():
        with BucketFileReader(bench_store.path) as reader:
            started = time.perf_counter()
            rows = 0
            checksum = 0
            for index in range(len(reader)):
                block = reader.read_bucket_block(index)
                rows += len(block)
                if len(block):
                    # Touch the first and last element of a column so the
                    # kernel cannot elide the page read entirely.
                    checksum ^= block.htm_ids[0] ^ block.htm_ids[len(block) - 1]
            timings.append(time.perf_counter() - started)
            return rows, checksum

    rows, _checksum = benchmark.pedantic(scan, rounds=5, iterations=1)
    assert rows == bench_store.total_rows
    elapsed = min(timings)
    megabytes = bench_store.file_bytes / 1e6
    benchmark.extra_info["file_megabytes"] = round(megabytes, 2)
    benchmark.extra_info["rows_decoded"] = rows
    if elapsed > 0:
        benchmark.extra_info["columnar_decode_mb_per_s"] = round(megabytes / elapsed, 2)
        benchmark.extra_info["columnar_rows_per_s"] = round(rows / elapsed, 0)


def test_bench_store_ingest(benchmark, tmp_path, scale):
    """Serial ingest rate: encode + CRC + write one columnar page per bucket."""
    simulator = build_simulator(scale)
    counter = iter(range(1_000_000))
    timings = []

    def ingest():
        path = tmp_path / f"ingest-{next(counter)}.lrbs"
        started = time.perf_counter()
        manifest = materialize_layout(path, simulator.layout, rows_per_bucket=BENCH_ROWS_PER_BUCKET)
        timings.append(time.perf_counter() - started)
        os.unlink(path)
        return manifest

    manifest = benchmark.pedantic(ingest, rounds=5, iterations=1)
    elapsed = min(timings)
    benchmark.extra_info["rows_ingested"] = manifest.total_rows
    benchmark.extra_info["file_megabytes"] = round(manifest.file_bytes / 1e6, 2)
    if elapsed > 0:
        benchmark.extra_info["ingest_rows_per_s"] = round(manifest.total_rows / elapsed, 0)


def test_bench_storage_process_backend(benchmark, tmp_path):
    """Wall-clock speedup of 4 shard processes reading on-disk buckets.

    This is the measurement PR 4 exists for: the ROADMAP flagged that the
    process backend's wall-clock speedup was fragile at small partitions
    because the per-service work was cost-model arithmetic.  With the
    scaling experiment replaying against materialised buckets, every
    service moves and decodes real bytes, so the speedup reflects real
    storage work.  A paper-sized partition is used regardless of the
    bench scale (as in the plain process-backend bench); the wall-clock
    assertion is gated on the host actually having cores to parallelise
    over, while the JSON artifact records the measurement either way.
    """
    heavy_simulator = build_simulator("full")
    heavy_trace = build_trace("full")
    store_path = tmp_path / "bench-site.lrbs"
    materialize_layout(store_path, heavy_simulator.layout, rows_per_bucket=BENCH_ROWS_PER_BUCKET)
    result = benchmark.pedantic(
        scaling.run,
        kwargs={
            "trace": heavy_trace,
            "simulator": heavy_simulator,
            "workers": (1, 4),
            "backend": "process",
            "store_path": str(store_path),
        },
        rounds=1,
        iterations=1,
    )
    record_headline(benchmark, result)
    benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
    benchmark.extra_info["backend"] = "process"
    benchmark.extra_info["store"] = "file-backed"
    # Virtual-clock scheduling quality is store- and backend-invariant.
    assert result.headline["speedup_4x"] > 1.5
    # Every row must have performed real physical reads ("real read (s)"
    # is the last column of the scaling table).
    assert all(row[-1] > 0.0 for row in result.rows)
    assert "wall_speedup_4x" in result.headline
    assert result.headline["wall_speedup_4x"] > 0.0
    if (os.cpu_count() or 1) >= 4:
        # With real cores behind the processes — and real storage work in
        # every bucket service — four shards must beat one in measured
        # wall-clock time.
        assert result.headline["wall_speedup_4x"] > 1.0
