"""Benchmark regenerating Figure 6 (cumulative workload by bucket)."""

from benchmarks.conftest import record_headline
from repro.experiments import figure6


def test_bench_figure6_cumulative_workload(benchmark, trace):
    result = benchmark.pedantic(figure6.run, kwargs={"trace": trace}, rounds=3, iterations=1)
    record_headline(benchmark, result)
    # Paper: ~2% of buckets carry ~50% of the workload.
    assert 0.3 <= result.headline["workload_fraction_in_top_2pct"] <= 0.7
    assert result.headline["bucket_fraction_for_half_workload"] <= 0.1
