"""Benchmark regenerating Figure 8 (saturation sweep per age bias)."""

from benchmarks.conftest import record_headline
from repro.experiments import figure8


def test_bench_figure8_saturation_sweep(benchmark, trace, simulator):
    result = benchmark.pedantic(
        figure8.run, kwargs={"trace": trace, "simulator": simulator}, rounds=1, iterations=1
    )
    record_headline(benchmark, result)
    # Paper: the throughput gap between age biases widens with saturation.
    assert (
        result.headline["throughput_gap_at_highest_saturation"]
        >= result.headline["throughput_gap_at_lowest_saturation"] - 1e-6
    )
