"""Benchmark regenerating Figure 4 (trade-off curves, tolerance-threshold α)."""

from benchmarks.conftest import record_headline
from repro.experiments import figure4


def test_bench_figure4_tradeoff_curves(benchmark, trace, simulator):
    result = benchmark.pedantic(
        figure4.run, kwargs={"trace": trace, "simulator": simulator}, rounds=1, iterations=1
    )
    record_headline(benchmark, result)
    # Paper: the controller tolerates more aging at low saturation than at high.
    assert result.headline["alpha_selected_low"] >= result.headline["alpha_selected_high"]
