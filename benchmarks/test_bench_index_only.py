"""Benchmark for the §5 claim that index-only evaluation loses badly to NoShare."""

from benchmarks.conftest import record_headline
from repro.experiments import index_only


def test_bench_index_only_slowdown(benchmark, simulator):
    result = benchmark.pedantic(
        index_only.run, kwargs={"simulator": simulator}, rounds=1, iterations=1
    )
    record_headline(benchmark, result)
    # Paper: "seven times slower than even NoShare" for data-intensive queries.
    assert result.headline["index_only_slowdown_busy_time"] > 3.0
