"""Benchmark regenerating Figure 2 (scan vs. index speed-up curve)."""

from benchmarks.conftest import record_headline
from repro.experiments import figure2


def test_bench_figure2_scan_vs_index(benchmark):
    result = benchmark.pedantic(figure2.run, rounds=3, iterations=1)
    record_headline(benchmark, result)
    # Paper: break-even near 3% of the bucket, up to ~20x gap.
    assert 0.02 <= result.headline["breakeven_fraction"] <= 0.04
    assert result.headline["max_strategy_gap"] > 10.0
