"""Benchmark regenerating Figure 5 (top-ten bucket reuse across the trace)."""

from benchmarks.conftest import record_headline
from repro.experiments import figure5


def test_bench_figure5_bucket_reuse(benchmark, trace):
    result = benchmark.pedantic(figure5.run, kwargs={"trace": trace}, rounds=3, iterations=1)
    record_headline(benchmark, result)
    # Paper: the top ten buckets are accessed by ~61% of queries.
    assert 0.4 <= result.headline["fraction_queries_touching_top10"] <= 0.9
