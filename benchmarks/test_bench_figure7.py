"""Benchmark regenerating Figure 7 (throughput/response time by scheduler)."""

from benchmarks.conftest import record_headline
from repro.experiments import figure7


def test_bench_figure7_scheduler_comparison(benchmark, trace, simulator):
    result = benchmark.pedantic(
        figure7.run, kwargs={"trace": trace, "simulator": simulator}, rounds=1, iterations=1
    )
    record_headline(benchmark, result)
    # Paper's headline: >2x throughput of the greedy scheduler over NoShare,
    # RR behaving like alpha=1, and the greedy scheduler showing the largest
    # response-time variance.
    assert result.headline["greedy_vs_noshare_throughput"] > 1.5
    assert abs(result.headline["rr_vs_alpha1_throughput"] - 1.0) < 0.25
    assert result.headline["greedy_response_cov"] > result.headline["alpha1_response_cov"]
