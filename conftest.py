"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. in a fully offline environment where ``pip install -e .`` cannot
resolve build dependencies).  When the package *is* installed this is a
harmless no-op because the installed location takes precedence only if it
differs, and both point at the same source tree for an editable install.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
