"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. in a fully offline environment where ``pip install -e .`` cannot
resolve build dependencies).  When the package *is* installed this is a
harmless no-op because the installed location takes precedence only if it
differs, and both point at the same source tree for an editable install.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    # Registered here (options must live in the rootdir conftest); the
    # snapshot itself is written by benchmarks/conftest.py, so the flag
    # only has an effect when the benchmark suite is part of the run.
    group = parser.getgroup("liferaft-bench")
    group.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "write a compact benchmark snapshot (per-benchmark best timing "
            "plus headline metrics) to PATH; compare two snapshots with "
            "`python -m benchmarks.ratchet`"
        ),
    )
